"""Search strategies over constrained parameter spaces.

Three strategies are provided, mirroring what OpenTuner mixes internally:

* :func:`exhaustive_search` — enumerate every valid configuration (used when
  the space is small, e.g. the PPCG tile/block space);
* :func:`random_search` — uniform random sampling under an evaluation budget;
* :func:`hill_climb_search` — random-restart steepest-descent moves along
  single-parameter neighbours, with fresh restarts drawn while budget
  remains so a walk that stalls on its first plateau does not end the
  search.

Every strategy returns the full evaluation history so benchmarks can report
how good the best-found point is relative to the explored space.

Batch evaluation
----------------

Each strategy accepts an optional ``batch_evaluate`` callable mapping a list
of configurations to a list of costs.  When provided, configurations are
costed in chunks through it instead of one ``objective`` call at a time —
this is the hook the parallel search engine (:mod:`repro.engine`) uses to
fan evaluations out over worker processes and its persistent results store.
Results are consumed in submission order, so a search produces the *same*
history and the same best point whether it is run serially or batched.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence

from .parameters import Configuration, ParameterSpace

Objective = Callable[[Configuration], float]
BatchEvaluate = Callable[[Sequence[Configuration]], Sequence[float]]

#: Configurations submitted per ``batch_evaluate`` call.
DEFAULT_BATCH_SIZE = 64


@dataclass
class Evaluation:
    """One evaluated configuration and its cost (lower is better)."""

    configuration: Configuration
    cost: float


@dataclass
class SearchOutcome:
    """The result of one search run."""

    best: Evaluation
    history: List[Evaluation] = field(default_factory=list)

    @property
    def evaluations(self) -> int:
        return len(self.history)


def _evaluate(objective: Objective, config: Configuration,
              history: List[Evaluation]) -> Evaluation:
    cost = float(objective(config))
    evaluation = Evaluation(configuration=dict(config), cost=cost)
    history.append(evaluation)
    return evaluation


def _evaluate_many(
    configs: Sequence[Configuration],
    objective: Objective,
    batch_evaluate: Optional[BatchEvaluate],
    history: List[Evaluation],
) -> List[Evaluation]:
    """Cost several configurations, batched when a batch evaluator exists.

    The returned evaluations are in submission order and are appended to
    ``history`` in the same order, which keeps batched and serial runs
    byte-for-byte identical.
    """
    if not configs:
        return []
    if batch_evaluate is None:
        return [_evaluate(objective, config, history) for config in configs]
    costs = list(batch_evaluate(list(configs)))
    if len(costs) != len(configs):
        raise ValueError(
            f"batch evaluator returned {len(costs)} costs for {len(configs)} configurations"
        )
    evaluations = [
        Evaluation(configuration=dict(config), cost=float(cost))
        for config, cost in zip(configs, costs)
    ]
    history.extend(evaluations)
    return evaluations


def _chunked(iterable: Iterable[Configuration],
             size: int) -> Iterable[List[Configuration]]:
    iterator = iter(iterable)
    while True:
        chunk = list(itertools.islice(iterator, size))
        if not chunk:
            return
        yield chunk


def exhaustive_search(
    space: ParameterSpace,
    objective: Objective,
    budget: Optional[int] = None,
    batch_evaluate: Optional[BatchEvaluate] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> SearchOutcome:
    """Evaluate every valid configuration (optionally capped at ``budget``)."""
    history: List[Evaluation] = []
    best: Optional[Evaluation] = None
    configs = space.configurations()
    if budget is not None:
        configs = itertools.islice(configs, budget)
    for chunk in _chunked(configs, max(1, batch_size)):
        for evaluation in _evaluate_many(chunk, objective, batch_evaluate, history):
            if best is None or evaluation.cost < best.cost:
                best = evaluation
    if best is None:
        raise ValueError("parameter space contains no valid configuration")
    return SearchOutcome(best=best, history=history)


def random_search(
    space: ParameterSpace,
    objective: Objective,
    budget: int,
    seed: int = 0,
    batch_evaluate: Optional[BatchEvaluate] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> SearchOutcome:
    """Uniform random sampling of valid configurations."""
    rng = random.Random(seed)
    history: List[Evaluation] = []
    best: Optional[Evaluation] = None
    sample = space.sample(rng, budget)
    for chunk in _chunked(sample, max(1, batch_size)):
        for evaluation in _evaluate_many(chunk, objective, batch_evaluate, history):
            if best is None or evaluation.cost < best.cost:
                best = evaluation
    if best is None:
        # Fall back to exhaustive enumeration of a possibly tiny space.
        return exhaustive_search(space, objective, budget,
                                 batch_evaluate=batch_evaluate,
                                 batch_size=batch_size)
    return SearchOutcome(best=best, history=history)


def hill_climb_search(
    space: ParameterSpace,
    objective: Objective,
    budget: int,
    seed: int = 0,
    restarts: int = 4,
    batch_evaluate: Optional[BatchEvaluate] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> SearchOutcome:
    """Random-restart steepest-descent over single-parameter neighbours.

    ``restarts`` bounds the number of independent basin walks.  Start points
    are drawn lazily: after each walk converges (or stalls on a plateau), a
    *fresh* point not yet used as a start is sampled, so a search whose
    first walk dies early still spends its remaining budget exploring other
    basins instead of returning the first local optimum.  All neighbours of
    the current point are costed together per step, which lets the batch
    evaluator fan a whole neighbourhood out at once.
    """
    rng = random.Random(seed)
    history: List[Evaluation] = []
    best: Optional[Evaluation] = None
    seen_starts = set()

    def next_start() -> Optional[Configuration]:
        for candidate in space.sample(rng, max(1, restarts) * 4):
            key = tuple(sorted(candidate.items()))
            if key not in seen_starts:
                seen_starts.add(key)
                return candidate
        return None

    walks = 0
    while walks < max(1, restarts) and len(history) < budget:
        start = next_start()
        if start is None:
            break
        walks += 1
        current = _evaluate_many([start], objective, batch_evaluate, history)[0]
        if best is None or current.cost < best.cost:
            best = current
        improved = True
        while improved and len(history) < budget:
            improved = False
            neighbours = list(space.neighbours(current.configuration))
            neighbours = neighbours[: budget - len(history)]
            for chunk in _chunked(neighbours, max(1, batch_size)):
                for candidate in _evaluate_many(chunk, objective,
                                                batch_evaluate, history):
                    if candidate.cost < current.cost:
                        current = candidate
                        improved = True
                    if best is None or candidate.cost < best.cost:
                        best = candidate

    if best is None:
        return exhaustive_search(space, objective, budget,
                                 batch_evaluate=batch_evaluate,
                                 batch_size=batch_size)
    return SearchOutcome(best=best, history=history)


__all__ = [
    "Objective",
    "BatchEvaluate",
    "DEFAULT_BATCH_SIZE",
    "Evaluation",
    "SearchOutcome",
    "exhaustive_search",
    "random_search",
    "hill_climb_search",
]
