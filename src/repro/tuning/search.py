"""Search strategies over constrained parameter spaces.

Three strategies are provided, mirroring what OpenTuner mixes internally:

* :func:`exhaustive_search` — enumerate every valid configuration (used when
  the space is small, e.g. the PPCG tile/block space);
* :func:`random_search` — uniform random sampling under an evaluation budget;
* :func:`hill_climb_search` — random restarts followed by steepest-descent
  moves along single-parameter neighbours.

Every strategy returns the full evaluation history so benchmarks can report
how good the best-found point is relative to the explored space.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from .parameters import Configuration, ParameterSpace

Objective = Callable[[Configuration], float]


@dataclass
class Evaluation:
    """One evaluated configuration and its cost (lower is better)."""

    configuration: Configuration
    cost: float


@dataclass
class SearchOutcome:
    """The result of one search run."""

    best: Evaluation
    history: List[Evaluation] = field(default_factory=list)

    @property
    def evaluations(self) -> int:
        return len(self.history)


def _evaluate(objective: Objective, config: Configuration,
              history: List[Evaluation]) -> Evaluation:
    cost = float(objective(config))
    evaluation = Evaluation(configuration=dict(config), cost=cost)
    history.append(evaluation)
    return evaluation


def exhaustive_search(space: ParameterSpace, objective: Objective,
                      budget: Optional[int] = None) -> SearchOutcome:
    """Evaluate every valid configuration (optionally capped at ``budget``)."""
    history: List[Evaluation] = []
    best: Optional[Evaluation] = None
    for i, config in enumerate(space.configurations()):
        if budget is not None and i >= budget:
            break
        evaluation = _evaluate(objective, config, history)
        if best is None or evaluation.cost < best.cost:
            best = evaluation
    if best is None:
        raise ValueError("parameter space contains no valid configuration")
    return SearchOutcome(best=best, history=history)


def random_search(space: ParameterSpace, objective: Objective, budget: int,
                  seed: int = 0) -> SearchOutcome:
    """Uniform random sampling of valid configurations."""
    rng = random.Random(seed)
    history: List[Evaluation] = []
    best: Optional[Evaluation] = None
    for config in space.sample(rng, budget):
        evaluation = _evaluate(objective, config, history)
        if best is None or evaluation.cost < best.cost:
            best = evaluation
    if best is None:
        # Fall back to exhaustive enumeration of a possibly tiny space.
        return exhaustive_search(space, objective, budget)
    return SearchOutcome(best=best, history=history)


def hill_climb_search(space: ParameterSpace, objective: Objective, budget: int,
                      seed: int = 0, restarts: int = 4) -> SearchOutcome:
    """Random-restart steepest-descent over single-parameter neighbours."""
    rng = random.Random(seed)
    history: List[Evaluation] = []
    best: Optional[Evaluation] = None

    starts = space.sample(rng, max(1, restarts))
    if not starts:
        return exhaustive_search(space, objective, budget)

    for start in starts:
        if len(history) >= budget:
            break
        current = _evaluate(objective, start, history)
        if best is None or current.cost < best.cost:
            best = current
        improved = True
        while improved and len(history) < budget:
            improved = False
            for neighbour in space.neighbours(current.configuration):
                if len(history) >= budget:
                    break
                candidate = _evaluate(objective, neighbour, history)
                if candidate.cost < current.cost:
                    current = candidate
                    improved = True
                if best is None or candidate.cost < best.cost:
                    best = candidate
    assert best is not None
    return SearchOutcome(best=best, history=history)


__all__ = [
    "Objective",
    "Evaluation",
    "SearchOutcome",
    "exhaustive_search",
    "random_search",
    "hill_climb_search",
]
