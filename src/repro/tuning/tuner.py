"""The ATF-style auto-tuner front end.

:class:`AutoTuner` ties a constrained :class:`ParameterSpace` to an objective
function (here: simulated kernel time on a virtual device) and runs one of the
search strategies under an evaluation budget.  Both the Lift variants and the
PPCG baseline are tuned through this same interface, mirroring the paper's
setup where both compilers get the same three-hour ATF/OpenTuner budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from .parameters import Configuration, ParameterSpace
from .search import (
    BatchEvaluate,
    Evaluation,
    Objective,
    exhaustive_search,
    hill_climb_search,
    random_search,
)


@dataclass
class TuningResult:
    """Best configuration found plus the search history.

    ``steady_cost_s`` is only set when the tuner was given a ``measure_best``
    hook: the winner's *steady-state* wall-clock cost, measured through an
    allocation-free execution plan (warm tape replay), as opposed to the
    model- or first-call-based ``best_cost`` the search optimised.
    ``tile_shape`` records the tape-optimizer tile the hook selected when it
    additionally searched tile sizes over warm fused-plan replays (``False``
    = the unfused tape won, ``"auto"`` = the cache-sized heuristic won,
    ``None`` when no tile search ran).  ``parallel_workers`` likewise
    records the fused-replay worker count the hook picked (``None`` when no
    worker search ran, ``1`` = serial replay won).
    """

    best_configuration: Configuration
    best_cost: float
    evaluations: int
    history: List[Evaluation]
    steady_cost_s: Optional[float] = None
    tile_shape: object = None
    parallel_workers: Optional[int] = None

    def describe(self) -> str:
        steady = (
            f", steady {self.steady_cost_s * 1e3:.4f} ms"
            if self.steady_cost_s is not None else ""
        )
        tile = (
            f" [tile {self.tile_shape}]"
            if self.steady_cost_s is not None and self.tile_shape is not None
            else ""
        )
        workers = (
            f" [workers {self.parallel_workers}]"
            if self.steady_cost_s is not None
            and self.parallel_workers is not None
            and self.parallel_workers != 1
            else ""
        )
        return (
            f"best cost {self.best_cost:.6g} after {self.evaluations} evaluations"
            f"{steady}{tile}{workers}: {self.best_configuration}"
        )


class AutoTuner:
    """Search a constrained parameter space for the lowest-cost configuration.

    ``validate_best`` is an optional callback invoked with the winning
    configuration before the result is returned.  The experiment pipeline
    uses it to *functionally* validate the tuned kernel variant — executing
    the lowered expression through the compiled NumPy backend and comparing
    against the reference interpreter — so a miscompiled variant can never
    silently win the search.  The callback should raise on mismatch.

    ``batch_objective``, when provided, costs whole lists of configurations
    at once and takes precedence over per-point ``objective`` calls inside
    the search strategies.  The parallel search engine passes its fan-out
    evaluator here, which is how an unchanged :class:`AutoTuner` runs on a
    process pool with a persistent results store underneath.  ``restarts``
    bounds the number of hill-climbing basin walks.

    ``measure_best`` is an optional callback invoked with the winning
    configuration (after validation) returning its measured *steady-state*
    cost in seconds — callers route this through an execution plan so the
    recorded number reflects the warm serving path, not first-call
    compilation and allocation noise.  The value is reported as
    :attr:`TuningResult.steady_cost_s`.  The callback may instead return a
    ``(cost_s, tile_shape)`` pair or a ``(cost_s, tile_shape,
    parallel_workers)`` triple — the contract of
    :func:`repro.backend.fuse.measure_best_tile`, which times warm fused
    replays across tape-optimizer tile shapes and replay-worker counts — in
    which case the winners are reported as :attr:`TuningResult.tile_shape`
    and :attr:`TuningResult.parallel_workers`.
    """

    STRATEGIES = ("exhaustive", "random", "hillclimb")

    def __init__(
        self,
        space: ParameterSpace,
        objective: Objective,
        budget: int = 200,
        strategy: str = "exhaustive",
        seed: int = 0,
        validate_best: Optional[Callable[[Configuration], None]] = None,
        restarts: int = 4,
        batch_objective: Optional[BatchEvaluate] = None,
        measure_best: Optional[Callable[[Configuration], float]] = None,
    ) -> None:
        if strategy not in self.STRATEGIES:
            raise ValueError(f"unknown search strategy {strategy!r}")
        self.space = space
        self.objective = objective
        self.budget = budget
        self.strategy = strategy
        self.seed = seed
        self.validate_best = validate_best
        self.restarts = restarts
        self.batch_objective = batch_objective
        self.measure_best = measure_best

    def tune(self) -> TuningResult:
        if self.strategy == "exhaustive":
            outcome = exhaustive_search(
                self.space, self.objective, self.budget,
                batch_evaluate=self.batch_objective,
            )
        elif self.strategy == "random":
            outcome = random_search(
                self.space, self.objective, self.budget, self.seed,
                batch_evaluate=self.batch_objective,
            )
        else:
            outcome = hill_climb_search(
                self.space, self.objective, self.budget, self.seed,
                restarts=self.restarts,
                batch_evaluate=self.batch_objective,
            )
        if self.validate_best is not None:
            self.validate_best(outcome.best.configuration)
        steady = None
        tile_shape = None
        parallel_workers = None
        if self.measure_best is not None:
            measured = self.measure_best(outcome.best.configuration)
            if isinstance(measured, tuple):
                if len(measured) >= 3:
                    steady, tile_shape, parallel_workers = measured[:3]
                else:
                    steady, tile_shape = measured
            else:
                steady = measured
        return TuningResult(
            best_configuration=outcome.best.configuration,
            best_cost=outcome.best.cost,
            evaluations=outcome.evaluations,
            history=outcome.history,
            steady_cost_s=steady,
            tile_shape=tile_shape,
            parallel_workers=parallel_workers,
        )


__all__ = ["AutoTuner", "TuningResult"]
