"""Tunable parameters and OpenCL constraints.

A :class:`ParameterSpace` is a set of named, discrete parameters plus a list
of constraints over complete configurations.  Constraints capture the OpenCL
validity rules the paper mentions explicitly (global sizes must be multiples
of local sizes, work-group sizes must not exceed the device limit, local
memory must fit) — the ATF framework's distinguishing feature over plain
OpenTuner.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Sequence, Tuple

Configuration = Dict[str, object]
Constraint = Callable[[Configuration], bool]


@dataclass(frozen=True)
class Parameter:
    """One discrete tunable parameter."""

    name: str
    values: Tuple[object, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"parameter {self.name!r} has no values")


class ParameterSpace:
    """A cartesian product of parameters filtered by constraints."""

    def __init__(self, parameters: Sequence[Parameter],
                 constraints: Sequence[Constraint] = ()) -> None:
        names = [p.name for p in parameters]
        if len(set(names)) != len(names):
            raise ValueError("duplicate parameter names in space")
        self.parameters = list(parameters)
        self.constraints = list(constraints)

    # -- queries -------------------------------------------------------------
    def is_valid(self, config: Configuration) -> bool:
        return all(constraint(config) for constraint in self.constraints)

    def size(self) -> int:
        """Number of raw (unconstrained) configurations."""
        total = 1
        for parameter in self.parameters:
            total *= len(parameter.values)
        return total

    def __iter__(self) -> Iterator[Configuration]:
        return self.configurations()

    def configurations(self) -> Iterator[Configuration]:
        """All valid configurations, in deterministic order."""
        names = [p.name for p in self.parameters]
        for combo in itertools.product(*[p.values for p in self.parameters]):
            config = dict(zip(names, combo))
            if self.is_valid(config):
                yield config

    def sample(self, rng, count: int) -> List[Configuration]:
        """Sample up to ``count`` distinct valid configurations."""
        names = [p.name for p in self.parameters]
        seen = set()
        out: List[Configuration] = []
        attempts = 0
        max_attempts = count * 50
        while len(out) < count and attempts < max_attempts:
            attempts += 1
            combo = tuple(rng.choice(p.values) for p in self.parameters)
            if combo in seen:
                continue
            seen.add(combo)
            config = dict(zip(names, combo))
            if self.is_valid(config):
                out.append(config)
        return out

    def neighbours(self, config: Configuration) -> Iterator[Configuration]:
        """Configurations differing from ``config`` in exactly one parameter."""
        for parameter in self.parameters:
            current = config[parameter.name]
            for value in parameter.values:
                if value == current:
                    continue
                candidate = dict(config)
                candidate[parameter.name] = value
                if self.is_valid(candidate):
                    yield candidate


#: Row-block extents searched for the tape optimizer's tile parameter, per
#: grid dimensionality.  2-D grids block rows (trailing axis stays whole and
#: contiguous); 3-D grids block depth slabs.
FUSE_TILE_BLOCKS = {2: (16, 32, 64), 3: (2, 4, 8)}


def fuse_tile_candidates(ndims: int) -> List[object]:
    """Tile-shape candidates for fused-plan replay at one dimensionality.

    Returns specs in the form :func:`repro.backend.fuse.normalize_tile_spec`
    accepts: ``False`` (unfused tape), ``"auto"`` (the cache-sized
    heuristic — spelled as a string, not ``None``, so a winning heuristic
    stays distinguishable from "no tile search ran" in
    :attr:`~repro.tuning.tuner.TuningResult.tile_shape`) and explicit
    leading-axis row/slab blocks with ``None`` (= whole-axis) entries for
    the remaining axes.  This is the space
    :meth:`~repro.tuning.tuner.AutoTuner` searches through its
    ``measure_best`` hook and the engine's measured scorer times with warm
    fused-plan replays.
    """
    blocks = FUSE_TILE_BLOCKS.get(min(max(ndims, 2), 3), FUSE_TILE_BLOCKS[3])
    return [False, "auto"] + [
        (block,) + (None,) * (max(ndims, 2) - 1) for block in blocks
    ]


def fuse_tile_parameter(ndims: int, name: str = "fuse_tile") -> Parameter:
    """The tape-optimizer tile as a first-class tunable parameter."""
    return Parameter(name, tuple(fuse_tile_candidates(ndims)))


#: Cap on the replay-worker counts the tuner searches.  Chunked replay is
#: bandwidth-bound; past a handful of cores extra workers only contend on
#: the memory bus, so the search space stays small and cheap.
MAX_WORKER_CANDIDATE = 8


def replay_worker_candidates(max_workers: int = None) -> Tuple[int, ...]:
    """Parallel-replay worker counts worth searching *on this machine*.

    Derived from the visible core count (overridable via ``max_workers``):
    always ``1`` (serial), then powers of two up to
    ``min(cores, MAX_WORKER_CANDIDATE)``.  On a single-core machine this is
    just ``(1,)``, so tile searches and tuning runs stay serial there
    instead of timing worker configurations that cannot win.
    """
    cores = max_workers if max_workers is not None else (os.cpu_count() or 1)
    candidates = [1]
    workers = 2
    while workers <= min(cores, MAX_WORKER_CANDIDATE):
        candidates.append(workers)
        workers *= 2
    return tuple(candidates)


def replay_workers_parameter(max_workers: int = None,
                             name: str = "replay_workers") -> Parameter:
    """Fused-region replay parallelism as a first-class tunable parameter."""
    return Parameter(name, replay_worker_candidates(max_workers))


def opencl_constraints(
    max_workgroup_size: int,
    local_memory_bytes: int,
    output_shape: Sequence[int],
    bytes_per_element: int = 4,
) -> List[Constraint]:
    """The standard OpenCL validity constraints used for every stencil kernel.

    Configurations are expected to contain ``wg_x`` / ``wg_y`` / ``wg_z``
    (missing dimensions default to 1), optionally ``tile_size`` and
    ``use_local_memory``.
    """

    def workgroup_items(config: Configuration) -> int:
        return (
            int(config.get("wg_x", 1))
            * int(config.get("wg_y", 1))
            * int(config.get("wg_z", 1))
        )

    def fits_workgroup(config: Configuration) -> bool:
        return 1 <= workgroup_items(config) <= max_workgroup_size

    def fits_local_memory(config: Configuration) -> bool:
        if not config.get("use_local_memory", False):
            return True
        tile = int(config.get("tile_size", 0))
        if tile <= 0:
            return True
        ndims = len(output_shape)
        return (tile ** ndims) * bytes_per_element <= local_memory_bytes

    def workgroup_not_larger_than_output(config: Configuration) -> bool:
        dims = ["wg_x", "wg_y", "wg_z"][: len(output_shape)]
        # wg_x maps to the innermost (fastest varying) output dimension.
        for dim_name, extent in zip(dims, reversed(list(output_shape))):
            if int(config.get(dim_name, 1)) > max(1, extent):
                return False
        return True

    return [fits_workgroup, fits_local_memory, workgroup_not_larger_than_output]


__all__ = [
    "Configuration",
    "Constraint",
    "FUSE_TILE_BLOCKS",
    "MAX_WORKER_CANDIDATE",
    "Parameter",
    "ParameterSpace",
    "fuse_tile_candidates",
    "fuse_tile_parameter",
    "opencl_constraints",
    "replay_worker_candidates",
    "replay_workers_parameter",
]
