"""Constrained parameter auto-tuning (the ATF / OpenTuner substitute).

The paper tunes every low-level expression's numerical parameters (thread
counts, tile sizes, work per thread) with the ATF framework on top of
OpenTuner, for up to three hours per benchmark.  This package provides the
same functionality against the virtual device: constrained parameter spaces,
several search strategies and a tuner front end with an evaluation budget.
"""

from .parameters import Parameter, ParameterSpace, opencl_constraints
from .search import exhaustive_search, hill_climb_search, random_search
from .tuner import AutoTuner, TuningResult

__all__ = [
    "Parameter",
    "ParameterSpace",
    "opencl_constraints",
    "exhaustive_search",
    "random_search",
    "hill_climb_search",
    "AutoTuner",
    "TuningResult",
]
