"""One stats blob for the whole execution stack (a ``/metrics``-style report).

:func:`stats_report` assembles the compilation-cache counters (hits, misses,
LRU evictions), the results-store counters (entries, hits, misses, sessions,
per-benchmark bests) and — when called by a running service — the serving
counters (requests, batches, compilations) into a single JSON-able dict.
The ``repro stats`` CLI verb prints exactly this report; the service's
:meth:`~repro.service.server.StencilService.stats` embeds it, so operators
read the same shape everywhere.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from ..backend.cache import CompilationCache, default_cache
from ..engine.store import ResultsStore


def cache_section(cache: Optional[CompilationCache] = None) -> Dict[str, int]:
    cache = default_cache if cache is None else cache
    return cache.stats()


def store_section(store: Union[ResultsStore, str, None]) -> Dict[str, object]:
    """Results-store counters plus a per-benchmark best summary."""
    if store is None:
        return {"available": False}
    owns = isinstance(store, str)
    opened = ResultsStore(store) if owns else store
    try:
        section: Dict[str, object] = {"available": True}
        section.update(opened.stats())
        section["sessions"] = len(opened.sessions())
        section["best"] = {
            name: {
                "variant": result.variant.describe(),
                "config": dict(result.config),
                "cost_s": result.cost,
                "device": result.device,
            }
            for name, result in sorted(opened.best_per_benchmark().items())
        }
        return section
    finally:
        if owns:
            opened.close()


def stats_report(
    cache: Optional[CompilationCache] = None,
    store: Union[ResultsStore, str, None] = None,
    service: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """The combined hit/miss/eviction report in one JSON-able blob."""
    report: Dict[str, object] = {
        "compilation_cache": cache_section(cache),
        "results_store": store_section(store),
    }
    if service is not None:
        report["service"] = service
    return report


__all__ = ["cache_section", "stats_report", "store_section"]
