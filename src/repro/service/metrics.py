"""One stats blob for the whole execution stack (a ``/metrics``-style report).

:func:`stats_report` assembles the compilation-cache counters (hits, misses,
LRU evictions), the results-store counters (entries, hits, misses, sessions,
per-benchmark bests) and — when called by a running service — the serving
counters (requests, batches, compilations) into a single JSON-able dict.
The ``repro stats`` CLI verb prints exactly this report; the service's
:meth:`~repro.service.server.StencilService.stats` embeds it, so operators
read the same shape everywhere.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Optional, Union

from ..backend.cache import CompilationCache, default_cache
from ..engine.store import ResultsStore


def cache_section(cache: Optional[CompilationCache] = None) -> Dict[str, int]:
    cache = default_cache if cache is None else cache
    return cache.stats()


# One read handle per store path, reused across stats/scrape calls.  A
# /metrics scrape every few seconds used to open and close a fresh SQLite
# connection per call; connections are check_same_thread=False, so a single
# cached handle per path serves every scraping thread.
_STORE_HANDLES: Dict[str, ResultsStore] = {}
_STORE_HANDLES_LOCK = threading.Lock()


def _store_handle(path: str) -> ResultsStore:
    key = os.path.abspath(path) if path != ":memory:" else path
    with _STORE_HANDLES_LOCK:
        handle = _STORE_HANDLES.get(key)
        if handle is None:
            handle = _STORE_HANDLES[key] = ResultsStore(path)
        return handle


def store_section(store: Union[ResultsStore, str, None]) -> Dict[str, object]:
    """Results-store counters plus a per-benchmark best summary."""
    if store is None:
        return {"available": False}
    opened = _store_handle(store) if isinstance(store, str) else store
    section: Dict[str, object] = {"available": True}
    section.update(opened.stats())
    section["sessions"] = len(opened.sessions())
    section["best"] = {
        name: {
            "variant": result.variant.describe(),
            "config": dict(result.config),
            "cost_s": result.cost,
            "device": result.device,
        }
        for name, result in sorted(opened.best_per_benchmark().items())
    }
    return section


def shards_section(per_shard: List[Dict[str, object]]) -> Dict[str, object]:
    """Roll per-shard executor stats into one summary block.

    Totals (requests, groups, errors, compilations) are summed across the
    fleet so dashboards get fleet-level numbers at the top, while the raw
    ``per_shard`` rows stay attached for balance checks — a healthy
    round-robin shows every shard with a similar ``groups`` count, and a
    dead shard shows up as ``alive: false`` with its errors counter frozen.
    """
    totals = {"requests": 0, "groups": 0, "errors": 0, "compilations": 0,
              "respawns": 0}
    alive = 0
    rows = []
    for shard in per_shard:
        # The raw registry snapshot rides the stats op for /metrics merging;
        # it is bulky and belongs to the telemetry surface, not this report.
        row = {k: v for k, v in shard.items() if k != "telemetry"}
        rows.append(row)
        for name in totals:
            value = row.get(name)
            if isinstance(value, (int, float)):
                totals[name] += int(value)
        if row.get("alive"):
            alive += 1
    section: Dict[str, object] = {"count": len(per_shard), "alive": alive}
    section.update(totals)
    section["per_shard"] = rows
    return section


def stats_report(
    cache: Optional[CompilationCache] = None,
    store: Union[ResultsStore, str, None] = None,
    service: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """The combined hit/miss/eviction report in one JSON-able blob."""
    report: Dict[str, object] = {
        "compilation_cache": cache_section(cache),
        "results_store": store_section(store),
    }
    if service is not None:
        report["service"] = service
    return report


__all__ = ["cache_section", "shards_section", "stats_report", "store_section"]
