"""One stats blob for the whole execution stack (a ``/metrics``-style report).

:func:`stats_report` assembles the compilation-cache counters (hits, misses,
LRU evictions), the results-store counters (entries, hits, misses, sessions,
per-benchmark bests) and — when called by a running service — the serving
counters (requests, batches, compilations) into a single JSON-able dict.
The ``repro stats`` CLI verb prints exactly this report; the service's
:meth:`~repro.service.server.StencilService.stats` embeds it, so operators
read the same shape everywhere.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..backend.cache import CompilationCache, default_cache
from ..engine.store import ResultsStore


def cache_section(cache: Optional[CompilationCache] = None) -> Dict[str, int]:
    cache = default_cache if cache is None else cache
    return cache.stats()


def store_section(store: Union[ResultsStore, str, None]) -> Dict[str, object]:
    """Results-store counters plus a per-benchmark best summary."""
    if store is None:
        return {"available": False}
    owns = isinstance(store, str)
    opened = ResultsStore(store) if owns else store
    try:
        section: Dict[str, object] = {"available": True}
        section.update(opened.stats())
        section["sessions"] = len(opened.sessions())
        section["best"] = {
            name: {
                "variant": result.variant.describe(),
                "config": dict(result.config),
                "cost_s": result.cost,
                "device": result.device,
            }
            for name, result in sorted(opened.best_per_benchmark().items())
        }
        return section
    finally:
        if owns:
            opened.close()


def shards_section(per_shard: List[Dict[str, object]]) -> Dict[str, object]:
    """Roll per-shard executor stats into one summary block.

    Totals (requests, groups, errors, compilations) are summed across the
    fleet so dashboards get fleet-level numbers at the top, while the raw
    ``per_shard`` rows stay attached for balance checks — a healthy
    round-robin shows every shard with a similar ``groups`` count, and a
    dead shard shows up as ``alive: false`` with its errors counter frozen.
    """
    totals = {"requests": 0, "groups": 0, "errors": 0, "compilations": 0}
    alive = 0
    for shard in per_shard:
        for name in totals:
            value = shard.get(name)
            if isinstance(value, (int, float)):
                totals[name] += int(value)
        if shard.get("alive"):
            alive += 1
    section: Dict[str, object] = {"count": len(per_shard), "alive": alive}
    section.update(totals)
    section["per_shard"] = list(per_shard)
    return section


def stats_report(
    cache: Optional[CompilationCache] = None,
    store: Union[ResultsStore, str, None] = None,
    service: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """The combined hit/miss/eviction report in one JSON-able blob."""
    report: Dict[str, object] = {
        "compilation_cache": cache_section(cache),
        "results_store": store_section(store),
    }
    if service is not None:
        report["service"] = service
    return report


__all__ = ["cache_section", "shards_section", "stats_report", "store_section"]
