"""The stencil execution service: async batching over tuned, compiled kernels.

This package turns the compiled NumPy backend (PR 1) and the tuned results
of the search engine (PR 2) into a long-lived, high-throughput serving
subsystem:

* :class:`StencilService` — the asyncio micro-batching server: concurrent
  requests that share a structural digest + input signature are stacked
  along a leading batch axis and executed as **one** vectorized call
  (one compile, one sweep, N responses);
* :class:`TunedKernelRegistry` — routes each request's digest to the best
  rewrite variant/configuration past ``repro tune`` sessions persisted in
  the engine's SQLite results store (cold digests get the default lowering
  and can enqueue a background tune);
* :class:`ServiceClient` — the blocking in-process client;
  :func:`serve_tcp` / :func:`run_server` — the JSON-lines TCP endpoint
  behind ``repro serve`` / ``repro submit``;
* :mod:`.shards` — the pre-forked worker processes behind
  ``StencilService(shards=N)`` / ``repro serve --shards``: groups are
  dispatched round-robin over shared-memory slabs so N sweeps run
  concurrently on a multi-core machine (:class:`ShardedExecutor`);
* :mod:`.loadgen` — the load generator behind ``repro loadgen`` and
  ``BENCH_service.json``;
* :mod:`.metrics` — the shared ``/metrics``-style stats report, also
  printed by ``repro stats``.
"""

from .loadgen import (
    check_batching,
    check_chaos,
    check_no_high_shed,
    check_sharding,
    format_chaos_loadgen,
    format_loadgen,
    format_mixed_loadgen,
    parse_chaos,
    parse_mix,
    run_chaos_loadgen,
    run_loadgen,
    run_mixed_loadgen,
)
from .metrics import stats_report
# ExecutionPlan is the backwards-compatible alias of RoutingPlan (the class
# was renamed when the backend gained its buffer-pooled ExecutionPlan).
from .registry import (DigestCircuitBreaker, ExecutionPlan, RoutingPlan,
                       TunedKernelRegistry)
from .http import serve_http
from .requests import ExecutionRequest, ExecutionResponse, ServiceError
from .server import ServiceClient, StencilService, run_server, serve_tcp
from .shards import ShardedExecutor, ShardError, ShardUnavailable
from .supervisor import ShardSupervisor

__all__ = [
    "DigestCircuitBreaker",
    "ExecutionPlan",
    "RoutingPlan",
    "ExecutionRequest",
    "ExecutionResponse",
    "ServiceClient",
    "ServiceError",
    "ShardError",
    "ShardSupervisor",
    "ShardUnavailable",
    "ShardedExecutor",
    "StencilService",
    "TunedKernelRegistry",
    "check_batching",
    "check_chaos",
    "check_no_high_shed",
    "check_sharding",
    "format_chaos_loadgen",
    "format_loadgen",
    "format_mixed_loadgen",
    "parse_chaos",
    "parse_mix",
    "run_chaos_loadgen",
    "run_loadgen",
    "run_mixed_loadgen",
    "run_server",
    "serve_http",
    "serve_tcp",
    "stats_report",
]
