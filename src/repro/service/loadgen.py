"""The load generator: concurrent traffic, latency percentiles, speedups.

``run_loadgen`` fires ``requests`` concurrent stencil executions at a
service and measures per-request latency (p50/p99) and aggregate
throughput, then runs the *per-request serial baseline* — the same
requests, one synchronous backend call at a time, the way every consumer
worked before the service existed — and reports the speedup.  The service's
own stats (batches formed, compilations, registry hits) are embedded so a
single report answers "did batching actually happen and how much did it
pay" (the ``BENCH_service.json`` artifact and the CI ``service-smoke`` job
both consume it).

``--connect`` mode drives a remote ``repro serve`` endpoint over TCP
instead of an in-process service; the serial baseline is then still
executed locally (the baseline is a library call, not a network call).
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import signal
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..apps.base import squeeze_result
from ..apps.suite import get_benchmark
from ..backend.base import NumpyBackend
from ..backend.cache import CompilationCache
from ..telemetry.registry import LATENCY_BUCKETS, Histogram
from .requests import PRIORITIES, ExecutionRequest
from .server import ServiceClient, StencilService

log = logging.getLogger("repro.service.loadgen")


def _percentile(latencies: Sequence[float], q: float) -> float:
    return float(np.percentile(np.asarray(latencies), q)) if latencies else 0.0


def _latency_summary(latencies: Sequence[float], wall: float,
                     requests: int) -> Dict[str, float]:
    """Exact percentiles next to streaming-histogram estimates.

    Every sample is also routed through the shared telemetry histogram
    scheme (:data:`LATENCY_BUCKETS`), and the bucket-derived p50/p99 are
    reported beside the exact ``numpy.percentile`` values.  The advertised
    accuracy contract — estimates land within one log2 bucket of the true
    order statistic — is asserted on every report, so a drifting histogram
    implementation fails the loadgen run loudly rather than skewing
    dashboards silently.
    """
    histogram = Histogram("loadgen_latency_seconds", buckets=LATENCY_BUCKETS)
    for latency in latencies:
        histogram.observe(latency)
    summary = {
        "wall_s": wall,
        "requests_per_s": requests / wall if wall else 0.0,
        "p50_ms": _percentile(latencies, 50) * 1e3,
        "p99_ms": _percentile(latencies, 99) * 1e3,
        "p50_ms_hist": histogram.quantile(50) * 1e3,
        "p99_ms_hist": histogram.quantile(99) * 1e3,
    }
    if latencies:
        for exact_key, hist_key in (("p50_ms", "p50_ms_hist"),
                                    ("p99_ms", "p99_ms_hist")):
            exact_bucket = histogram.bucket_index(summary[exact_key] / 1e3)
            hist_bucket = histogram.bucket_index(summary[hist_key] / 1e3)
            if abs(exact_bucket - hist_bucket) > 1:
                raise AssertionError(
                    f"histogram {hist_key} estimate "
                    f"{summary[hist_key]:.3f} ms disagrees with exact "
                    f"{summary[exact_key]:.3f} ms by more than one bucket"
                )
    return summary


def build_requests(
    benchmark: str,
    requests: int,
    shape: Optional[Sequence[int]] = None,
    identical: bool = True,
    seed: int = 0,
    return_result: bool = False,
) -> List[ExecutionRequest]:
    """The request stream: identical (hot-digest) or distinct-seed traffic."""
    bench = get_benchmark(benchmark)
    shape = tuple(shape or tuple(min(extent, 64) for extent in bench.default_shape))
    first = ExecutionRequest.for_benchmark(
        benchmark, shape=shape, seed=seed, return_result=return_result
    )
    out = [first]
    for index in range(1, requests):
        if identical:
            out.append(
                ExecutionRequest(
                    inputs=[np.array(grid) for grid in first.inputs],
                    benchmark=first.benchmark,
                    return_result=return_result,
                )
            )
        else:
            out.append(
                ExecutionRequest.for_benchmark(
                    benchmark, shape=shape, seed=seed + index,
                    return_result=return_result,
                )
            )
    return out


def _serial_baseline(requests: Sequence[ExecutionRequest],
                     warmup: bool = True,
                     repeats: int = 1) -> Dict[str, float]:
    """The status quo: one synchronous compiled-backend call per request."""
    from .registry import TunedKernelRegistry

    registry = TunedKernelRegistry(store=None)
    backend = NumpyBackend(cache=CompilationCache(), fallback=False)
    if warmup and requests:
        head = requests[0]
        plan = registry.plan_for(benchmark=head.benchmark, program=head.program)
        program, _variant, _source = plan.program_for(tuple(head.inputs[0].shape))
        backend.run(program, head.inputs, head.size_env or None)
    best: Optional[Dict[str, float]] = None
    for _ in range(max(1, repeats)):
        latencies: List[float] = []
        started = time.perf_counter()
        for request in requests:
            t0 = time.perf_counter()
            plan = registry.plan_for(benchmark=request.benchmark,
                                     program=request.program)
            program, _variant, _source = plan.program_for(
                tuple(request.inputs[0].shape)
            )
            squeeze_result(backend.run(program, request.inputs,
                                       request.size_env or None))
            latencies.append(time.perf_counter() - t0)
        wall = time.perf_counter() - started
        measured = _latency_summary(latencies, wall, len(requests))
        if best is None or measured["wall_s"] < best["wall_s"]:
            best = measured
    assert best is not None
    return best


def _drive_in_process(
    requests: Sequence[ExecutionRequest],
    window_ms: float,
    max_batch: int,
    store: Optional[str],
    device: str,
    warmup: bool = True,
    repeats: int = 1,
    shards: int = 0,
) -> Tuple[Dict[str, float], Dict[str, object]]:
    service = StencilService(
        device=device, store=store, batch_window=window_ms / 1e3,
        max_batch=max_batch, shards=shards,
    )
    best: Optional[Dict[str, float]] = None
    with ServiceClient(service) as client:
        if warmup and requests:
            # One request up front compiles the hot kernel, so the timed
            # stream measures steady-state serving throughput.  The compile
            # still appears (exactly once) in the reported cache stats.
            client.execute(requests[0])
        for _ in range(max(1, repeats)):
            started = time.perf_counter()
            responses = client.execute_many(list(requests))
            wall = time.perf_counter() - started
            latencies = [response.latency_s for response in responses]
            measured = _latency_summary(latencies, wall, len(requests))
            if best is None or measured["wall_s"] < best["wall_s"]:
                best = measured
        stats = client.stats()
    assert best is not None
    return best, stats


def _drive_tcp(
    requests: Sequence[ExecutionRequest],
    host: str,
    port: int,
    warmup: bool = True,
) -> Tuple[Dict[str, float], Dict[str, object]]:
    """Fire the stream down one pipelined TCP connection and fetch stats."""

    async def drive() -> Tuple[Dict[str, float], Dict[str, object]]:
        reader, writer = await asyncio.open_connection(host, port)
        if warmup and requests:
            wire = requests[0].to_wire()
            wire["id"] = -2
            writer.write((json.dumps(wire) + "\n").encode("utf-8"))
            await writer.drain()
            await reader.readline()
        t0 = time.perf_counter()
        for index, request in enumerate(requests):
            wire = request.to_wire()
            wire["id"] = index
            writer.write((json.dumps(wire) + "\n").encode("utf-8"))
        await writer.drain()
        finished: Dict[int, float] = {}
        errors: List[str] = []
        while len(finished) < len(requests):
            line = await reader.readline()
            if not line:
                raise ConnectionError("server closed the connection early")
            reply = json.loads(line)
            # Per-request latency is the server-measured enqueue-to-complete
            # time carried in the reply — the same quantity the in-process
            # mode reports, so percentiles stay comparable across modes.
            finished[int(reply["id"])] = float(reply.get("latency_ms", 0.0)) / 1e3
            if not reply.get("ok", True):
                errors.append(str(reply.get("error")))
        wall = time.perf_counter() - t0
        writer.write((json.dumps({"op": "stats", "id": -1}) + "\n").encode("utf-8"))
        await writer.drain()
        stats_reply = json.loads(await reader.readline())
        writer.close()
        if errors:
            raise RuntimeError(f"{len(errors)} requests failed: {errors[0]}")
        latencies = list(finished.values())
        return (
            _latency_summary(latencies, wall, len(requests)),
            dict(stats_reply.get("stats") or {}),
        )

    return asyncio.run(drive())


def run_loadgen(
    benchmark: str = "stencil2d",
    requests: int = 64,
    shape: Optional[Sequence[int]] = None,
    identical: bool = True,
    seed: int = 0,
    window_ms: float = 2.0,
    max_batch: int = 64,
    store: Optional[str] = None,
    device: str = "nvidia",
    connect: Optional[Tuple[str, int]] = None,
    warmup: bool = True,
    repeats: int = 1,
    shards: int = 0,
) -> Dict[str, object]:
    """Batched-service vs per-request-serial comparison for one stream.

    ``warmup`` sends one untimed request down each path first, so the
    reported throughput is the steady state a long-lived service actually
    delivers (compile cost still appears — once — in the cache stats).
    ``repeats`` re-runs both timed streams and keeps each side's best wall
    clock (the engine's measured-scoring convention); repeated streams
    doubly demonstrate the cache contract — compilations stay at one.
    ``shards`` drives a multi-process service (in-process mode only): N
    pre-forked shard processes sweep groups concurrently, and the report
    gains per-shard request counts; the compile-once contract then reads
    "one compilation per shard that served the hot digest".
    """
    stream = build_requests(benchmark, requests, shape=shape,
                            identical=identical, seed=seed)
    log.info("loadgen: %d %s requests for %s (%s)",
             requests, "identical" if identical else "distinct", benchmark,
             "tcp" if connect is not None else "in-process")
    # A full batch flushes without waiting out the window, so cap the batch
    # size at the stream size: the generator measures batching, not the
    # batcher idling for traffic that will never arrive.
    max_batch = min(max_batch, requests)
    if connect is not None:
        batched, stats = _drive_tcp(stream, connect[0], connect[1],
                                    warmup=warmup)
        repeats = 1  # one network stream; mirror it in the serial baseline
    else:
        batched, stats = _drive_in_process(stream, window_ms, max_batch,
                                           store, device, warmup=warmup,
                                           repeats=repeats, shards=shards)
    serial = _serial_baseline(stream, warmup=warmup, repeats=repeats)
    service_section = dict(stats.get("service") or {})
    cache_section = dict(stats.get("compilation_cache") or {})
    shard_section = dict(service_section.get("shards") or {})
    per_shard = list(shard_section.get("per_shard") or [])
    # In sharded mode the parent backend compiles nothing (fallbacks aside):
    # the compile-once contract moves into the shard processes, so the
    # report's compilation count is the fleet total.
    compilations = cache_section.get("misses")
    if per_shard:
        compilations = shard_section.get("compilations")
    speedup = (
        batched["requests_per_s"] / serial["requests_per_s"]
        if serial["requests_per_s"] else float("inf")
    )
    return {
        "benchmark": benchmark,
        "requests": requests,
        "shape": list(shape) if shape else None,
        "identical": identical,
        # In tcp mode the batching configuration lives server-side; recording
        # the local defaults would misattribute the measured batching.
        "window_ms": None if connect is not None else window_ms,
        "max_batch": None if connect is not None else max_batch,
        "repeats": repeats,
        "mode": "tcp" if connect is not None else "in-process",
        "batched": batched,
        "serial": serial,
        "speedup": speedup,
        "batches_formed": service_section.get("batches_formed"),
        "requests_served": service_section.get("requests_served"),
        "largest_batch": service_section.get("largest_batch"),
        "compilations": compilations,
        "shards": len(per_shard) if per_shard else 0,
        "shard_requests": [
            int(row.get("requests") or 0) for row in per_shard
        ],
        "service_stats": stats,
    }


def format_loadgen(report: Dict[str, object]) -> str:
    """Human-readable (and CI-greppable) rendering of a loadgen report."""
    batched = report["batched"]
    serial = report["serial"]
    lines = [
        f"loadgen {report['benchmark']}: {report['requests']} concurrent "
        f"{'identical' if report['identical'] else 'distinct'} requests "
        f"({report['mode']})",
        f"  batched service: {batched['requests_per_s']:.1f} req/s, "
        f"p50 {batched['p50_ms']:.2f} ms, p99 {batched['p99_ms']:.2f} ms",
        f"  histogram est.:  p50 {batched.get('p50_ms_hist', 0.0):.2f} ms, "
        f"p99 {batched.get('p99_ms_hist', 0.0):.2f} ms "
        f"(log2 buckets, one-bucket accuracy)",
        f"  serial baseline: {serial['requests_per_s']:.1f} req/s, "
        f"p50 {serial['p50_ms']:.2f} ms, p99 {serial['p99_ms']:.2f} ms",
        f"  speedup: {report['speedup']:.2f}x",
        f"  batching: requests_served={report['requests_served']} "
        f"batches_formed={report['batches_formed']} "
        f"largest_batch={report['largest_batch']} "
        f"compilations={report['compilations']}",
    ]
    if report.get("shards"):
        lines.append(
            f"  shards: {report['shards']} processes, per-shard requests "
            f"{report.get('shard_requests')}"
        )
    return "\n".join(lines)


def check_batching(report: Dict[str, object]) -> List[str]:
    """Assertion-style checks the CI smoke job relies on (empty = pass)."""
    problems: List[str] = []
    served = report.get("requests_served") or 0
    batches = report.get("batches_formed")
    if batches is None or served < int(report["requests"]):
        problems.append("service stats missing or incomplete")
        return problems
    if batches >= served:
        problems.append(
            f"no batching occurred: {batches} batches for {served} requests"
        )
    if report.get("identical"):
        # Compile-once per serving backend: the parent in unsharded mode,
        # each shard that saw the hot digest in sharded mode.
        shard_requests = list(report.get("shard_requests") or [])
        expected = (
            sum(1 for count in shard_requests if count > 0)
            if shard_requests else 1
        )
        if report.get("compilations") != expected:
            problems.append(
                f"expected {expected} compilation(s) for the hot digest, "
                f"got {report.get('compilations')}"
            )
    return problems


def parse_mix(spec: str) -> Dict[str, int]:
    """Parse ``high:1,normal:8,batch:4`` into priority weights."""
    weights: Dict[str, int] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        priority, _, weight = part.partition(":")
        priority = priority.strip().lower()
        if priority not in PRIORITIES:
            raise ValueError(
                f"unknown priority {priority!r} in mix (one of {PRIORITIES})"
            )
        try:
            weights[priority] = int(weight.strip() or "1")
        except ValueError:
            raise ValueError(f"mix weight for {priority!r} is not an integer")
        if weights[priority] < 0:
            raise ValueError(f"mix weight for {priority!r} must be >= 0")
    if not weights or not any(weights.values()):
        raise ValueError(f"mix {spec!r} selects no traffic")
    return weights


def build_mixed_requests(
    benchmark: str,
    requests: int,
    mix: Dict[str, int],
    shape: Optional[Sequence[int]] = None,
    seed: int = 0,
    deadline_ms: Optional[float] = None,
) -> List[ExecutionRequest]:
    """An interleaved mixed-priority stream (weights → round-robin pattern).

    The pattern repeats one request per unit of weight — ``high:1,batch:4``
    yields ``high, batch, batch, batch, batch, high, …`` — so every window
    of traffic carries the configured ratio (no long single-priority runs
    that would make priority draining trivially easy).
    """
    bench = get_benchmark(benchmark)
    shape = tuple(shape
                  or tuple(min(extent, 64) for extent in bench.default_shape))
    first = ExecutionRequest.for_benchmark(benchmark, shape=shape, seed=seed,
                                           return_result=False)
    pattern = [priority for priority in PRIORITIES
               for _ in range(mix.get(priority, 0))]
    out: List[ExecutionRequest] = []
    for index in range(requests):
        out.append(
            ExecutionRequest(
                inputs=[np.array(grid) for grid in first.inputs],
                benchmark=first.benchmark,
                return_result=False,
                priority=pattern[index % len(pattern)],
                deadline_ms=deadline_ms,
            )
        )
    return out


def _mixed_summary(stream: Sequence[ExecutionRequest],
                   responses: Sequence[object],
                   wall: float) -> Dict[str, object]:
    """Per-priority latency percentiles + shed/reject/error accounting."""
    per_priority: Dict[str, Dict[str, object]] = {}
    for priority in PRIORITIES:
        indices = [i for i, request in enumerate(stream)
                   if request.priority == priority]
        if not indices:
            continue
        rows = [responses[i] for i in indices]
        ok = [row for row in rows if row is not None and row.ok]
        shed = sum(1 for row in rows if row is not None and row.shed)
        rejected = sum(1 for row in rows
                       if row is not None and row.rejected)
        errors = sum(1 for row in rows if row is None
                     or (not row.ok and not row.shed and not row.rejected))
        latencies = [row.latency_s for row in ok]
        per_priority[priority] = {
            "requests": len(rows),
            "served": len(ok),
            "shed": shed,
            "rejected": rejected,
            "errors": errors,
            "p50_ms": _percentile(latencies, 50) * 1e3,
            "p99_ms": _percentile(latencies, 99) * 1e3,
        }
    return {
        "wall_s": wall,
        "requests_per_s": len(stream) / wall if wall else 0.0,
        "per_priority": per_priority,
        "sheds_total": sum(int(row["shed"]) for row in per_priority.values()),
        "rejects_total": sum(int(row["rejected"])
                             for row in per_priority.values()),
    }


def _drive_mixed_in_process(
    stream: Sequence[ExecutionRequest],
    window_ms: float,
    max_batch: int,
    store: Optional[str],
    device: str,
    max_queue_depth: Optional[int] = None,
    max_inflight_per_digest: Optional[int] = None,
    warmup: bool = True,
) -> Tuple[Sequence[object], float, Dict[str, object]]:
    service = StencilService(
        device=device, store=store, batch_window=window_ms / 1e3,
        max_batch=max_batch, max_queue_depth=max_queue_depth,
        max_inflight_per_digest=max_inflight_per_digest,
    )
    with ServiceClient(service) as client:
        if warmup and stream:
            head = stream[0]
            client.execute(ExecutionRequest(
                inputs=[np.array(grid) for grid in head.inputs],
                benchmark=head.benchmark, return_result=False,
            ))
        started = time.perf_counter()
        # Sheds and rejects are the measurement here, not failures.
        responses = client.execute_many(list(stream), raise_on_error=False)
        wall = time.perf_counter() - started
        stats = client.stats()
    return responses, wall, stats


def _drive_mixed_remote(
    stream: Sequence[ExecutionRequest],
    host: str,
    port: int,
    transport: str = "tcp",
    auth_key: Optional[str] = None,
    concurrency: int = 8,
    warmup: bool = True,
) -> Tuple[Sequence[object], float, Dict[str, object]]:
    """Drive a remote endpoint through the client library, concurrently.

    ``concurrency`` worker threads share one :class:`StencilClient` (its
    transports pool connections), so the stream arrives as genuinely
    concurrent traffic — the saturating shape admission control exists for.
    """
    from concurrent.futures import ThreadPoolExecutor

    from ..client import ClientConfig, StencilClient, TransportError

    client = StencilClient(ClientConfig(host=host, port=port,
                                        transport=transport,
                                        auth_key=auth_key))
    responses: List[object] = [None] * len(stream)

    def fire(index: int) -> None:
        try:
            responses[index] = client.execute(stream[index])
        except TransportError as error:
            log.warning("request %d failed in transport: %s", index, error)

    try:
        if warmup and stream:
            head = stream[0]
            client.execute(ExecutionRequest(
                inputs=[np.array(grid) for grid in head.inputs],
                benchmark=head.benchmark, return_result=False,
            ))
        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=max(1, concurrency)) as pool:
            list(pool.map(fire, range(len(stream))))
        wall = time.perf_counter() - started
        stats = client.stats() or {}
    finally:
        client.close()
    return responses, wall, stats


def run_mixed_loadgen(
    benchmark: str = "stencil2d",
    requests: int = 64,
    mix: Optional[Dict[str, int]] = None,
    shape: Optional[Sequence[int]] = None,
    seed: int = 0,
    deadline_ms: Optional[float] = None,
    window_ms: float = 2.0,
    max_batch: int = 8,
    store: Optional[str] = None,
    device: str = "nvidia",
    connect: Optional[Tuple[str, int]] = None,
    transport: str = "tcp",
    auth_key: Optional[str] = None,
    concurrency: int = 8,
    max_queue_depth: Optional[int] = None,
    max_inflight_per_digest: Optional[int] = None,
    warmup: bool = True,
) -> Dict[str, object]:
    """The mixed-priority replay: saturate, then report who got served.

    An interleaved stream (``mix`` weights, all carrying ``deadline_ms``)
    is fired concurrently at the service; the report breaks p50/p99 and
    shed/reject counts out per priority, and measures an *unloaded*
    high-priority baseline first so the tail-latency contract — loaded
    high-priority p99 within 2x of unloaded — is checked in one run.
    """
    mix = dict(mix or {"high": 1, "normal": 8, "batch": 4})
    stream = build_mixed_requests(benchmark, requests, mix, shape=shape,
                                  seed=seed, deadline_ms=deadline_ms)
    log.info(
        "mixed loadgen: %d requests (%s) for %s (%s)", requests,
        ",".join(f"{k}:{v}" for k, v in mix.items()), benchmark,
        f"{transport} {connect[0]}:{connect[1]}" if connect else "in-process",
    )
    # The unloaded baseline: a short, sequential, high-priority stream with
    # no deadline — what one isolated caller sees from the same service.
    baseline_stream = [
        ExecutionRequest(
            inputs=[np.array(grid) for grid in stream[0].inputs],
            benchmark=stream[0].benchmark, return_result=False,
            priority="high",
        )
        for _ in range(min(8, max(2, requests // 8)))
    ]
    if connect is not None:
        base_responses, base_wall, _ = _drive_mixed_remote(
            baseline_stream, connect[0], connect[1], transport=transport,
            auth_key=auth_key, concurrency=1, warmup=warmup,
        )
        responses, wall, stats = _drive_mixed_remote(
            stream, connect[0], connect[1], transport=transport,
            auth_key=auth_key, concurrency=concurrency, warmup=False,
        )
    else:
        max_batch = min(max_batch, requests)
        base_responses, base_wall, _ = _drive_mixed_in_process(
            baseline_stream, window_ms, max_batch, store, device,
            warmup=warmup,
        )
        responses, wall, stats = _drive_mixed_in_process(
            stream, window_ms, max_batch, store, device,
            max_queue_depth=max_queue_depth,
            max_inflight_per_digest=max_inflight_per_digest, warmup=warmup,
        )
    baseline = _mixed_summary(baseline_stream, base_responses, base_wall)
    mixed = _mixed_summary(stream, responses, wall)
    unloaded_high = dict(baseline["per_priority"].get("high") or {})
    loaded_high = dict(mixed["per_priority"].get("high") or {})
    unloaded_p99 = float(unloaded_high.get("p99_ms") or 0.0)
    loaded_p99 = float(loaded_high.get("p99_ms") or 0.0)
    service_section = dict((stats or {}).get("service") or {})
    admission = dict(service_section.get("admission") or {})
    return {
        "benchmark": benchmark,
        "requests": requests,
        "mix": mix,
        "deadline_ms": deadline_ms,
        "mode": (f"{transport}" if connect is not None else "in-process"),
        "shape": list(shape) if shape else None,
        "wall_s": mixed["wall_s"],
        "requests_per_s": mixed["requests_per_s"],
        "per_priority": mixed["per_priority"],
        "sheds_total": mixed["sheds_total"],
        "rejects_total": mixed["rejects_total"],
        "high_shed": int((mixed["per_priority"].get("high") or {})
                         .get("shed", 0)),
        "unloaded_high_p99_ms": unloaded_p99,
        "loaded_high_p99_ms": loaded_p99,
        "high_p99_ratio": (loaded_p99 / unloaded_p99) if unloaded_p99
        else None,
        "server_admission": admission,
        "service_stats": stats,
    }


def format_mixed_loadgen(report: Dict[str, object]) -> str:
    """Human-readable (and CI-greppable) mixed-priority report."""
    mix = report["mix"]
    lines = [
        f"mixed loadgen {report['benchmark']}: {report['requests']} requests "
        f"({','.join(f'{k}:{v}' for k, v in mix.items())}, "
        f"deadline {report['deadline_ms']} ms, {report['mode']})",
    ]
    for priority, row in (report.get("per_priority") or {}).items():
        lines.append(
            f"  {priority:>6}: {row['served']}/{row['requests']} served, "
            f"shed={row['shed']} rejected={row['rejected']} "
            f"errors={row['errors']}, p50 {row['p50_ms']:.2f} ms, "
            f"p99 {row['p99_ms']:.2f} ms"
        )
    ratio = report.get("high_p99_ratio")
    lines.append(
        f"  high p99: {report['loaded_high_p99_ms']:.2f} ms loaded vs "
        f"{report['unloaded_high_p99_ms']:.2f} ms unloaded"
        + (f" ({ratio:.2f}x)" if ratio else "")
    )
    lines.append(
        f"  pressure: sheds_total={report['sheds_total']} "
        f"rejects_total={report['rejects_total']} "
        f"high_shed={report['high_shed']}"
    )
    return "\n".join(lines)


def check_no_high_shed(report: Dict[str, object]) -> List[str]:
    """The ``--assert-no-high-shed`` CI contract (empty = pass)."""
    problems: List[str] = []
    high = dict((report.get("per_priority") or {}).get("high") or {})
    if not high:
        problems.append("report carries no high-priority traffic")
        return problems
    if int(high.get("shed", 0)) > 0:
        problems.append(
            f"{high['shed']} high-priority request(s) were shed"
        )
    if int(high.get("rejected", 0)) > 0:
        problems.append(
            f"{high['rejected']} high-priority request(s) were rejected"
        )
    if int(high.get("errors", 0)) > 0:
        problems.append(
            f"{high['errors']} high-priority request(s) failed"
        )
    return problems


def check_sharding(report: Dict[str, object]) -> List[str]:
    """Sharded-run checks: every shard must actually have served traffic."""
    problems: List[str] = []
    shard_requests = list(report.get("shard_requests") or [])
    if not shard_requests:
        problems.append("report has no per-shard request counts")
        return problems
    for index, count in enumerate(shard_requests):
        if count <= 0:
            problems.append(f"shard {index} served no requests")
    return problems


# ---------------------------------------------------------------------------
# Chaos mode: inject real failures mid-run, assert the self-healing contract
# ---------------------------------------------------------------------------

CHAOS_ACTIONS = ("kill-shard", "hang-shard")

_CHAOS_SIGNALS = {
    # SIGKILL: the shard dies instantly, the parent sees EOF on the pipe.
    "kill-shard": signal.SIGKILL,
    # SIGSTOP: the shard wedges without dying — only the per-round-trip
    # watchdog timeout can notice it.  (The supervisor's respawn SIGKILLs
    # it, which works on stopped processes.)
    "hang-shard": signal.SIGSTOP,
}


def parse_chaos(spec: str) -> List[Dict[str, object]]:
    """Parse ``kill-shard:t=2,hang-shard:t=4[:shard=1]`` into chaos events."""
    events: List[Dict[str, object]] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        fields = part.split(":")
        action = fields[0].strip()
        if action not in CHAOS_ACTIONS:
            raise ValueError(
                f"unknown chaos action {action!r} (one of {CHAOS_ACTIONS})")
        event: Dict[str, object] = {"action": action, "t": 1.0, "shard": None}
        for field in fields[1:]:
            key, _, value = field.partition("=")
            key = key.strip()
            try:
                if key == "t":
                    event["t"] = float(value)
                elif key == "shard":
                    event["shard"] = int(value)
                else:
                    raise ValueError(
                        f"unknown chaos qualifier {key!r} in {part!r}")
            except ValueError as error:
                if "unknown chaos" in str(error):
                    raise
                raise ValueError(
                    f"bad value for {key!r} in {part!r}: {value!r}")
        events.append(event)
    if not events:
        raise ValueError(f"empty chaos spec: {spec!r}")
    return sorted(events, key=lambda event: float(event["t"]))  # type: ignore[arg-type]


def _chaos_wave(first: ExecutionRequest, size: int) -> List[ExecutionRequest]:
    """One wave of concurrent traffic: request 0 is high priority (so the
    tail-latency contract is measured under chaos), the rest normal."""
    return [
        ExecutionRequest(
            inputs=[np.array(grid) for grid in first.inputs],
            benchmark=first.benchmark,
            return_result=False,
            priority="high" if index == 0 else "normal",
        )
        for index in range(size)
    ]


def _summarize_chaos_responses(
    responses: Sequence[object], priorities: Sequence[str]
) -> Dict[str, object]:
    served = shed = rejected = failed = lost = 0
    high_latencies: List[float] = []
    for response, priority in zip(responses, priorities):
        if response is None:
            lost += 1
        elif response.ok:
            served += 1
            if priority == "high":
                high_latencies.append(response.latency_s)
        elif response.shed:
            shed += 1
        elif response.rejected:
            rejected += 1
        else:
            failed += 1
    return {
        "requests": len(responses),
        "served": served,
        "shed": shed,
        "rejected": rejected,
        "failed": failed,
        "lost": lost,
        "high_p99_ms": _percentile(high_latencies, 99) * 1e3,
    }


def run_chaos_loadgen(
    benchmark: str = "stencil2d",
    chaos: Optional[List[Dict[str, object]]] = None,
    duration_s: float = 6.0,
    shards: int = 2,
    shape: Optional[Sequence[int]] = None,
    seed: int = 0,
    window_ms: float = 2.0,
    max_batch: int = 8,
    wave_size: int = 8,
    wave_gap_s: float = 0.02,
    shard_timeout_s: float = 1.0,
    max_respawns: int = 5,
    recovery_timeout_s: float = 20.0,
    connect: Optional[Tuple[str, int]] = None,
    transport: str = "tcp",
    auth_key: Optional[str] = None,
    store: Optional[str] = None,
    device: str = "nvidia",
) -> Dict[str, object]:
    """Sustained load with real mid-run failures; report the survival story.

    Waves of concurrent requests (one high-priority each) are fired for
    ``duration_s`` while the chaos schedule sends real signals to shard
    processes — ``kill-shard`` SIGKILLs one, ``hang-shard`` SIGSTOPs one.
    The contract under test: **zero failed requests and zero lost replies**
    (dead-shard groups are redispatched; the reply never arrived, so
    re-execution is idempotent), the supervisor respawns every victim
    (``shard_restarts >= len(chaos)``), and the killed shard serves again
    (its request count grows past its value at the moment it was hit).

    In ``--connect`` mode the victim PIDs come from the server's per-shard
    stats, so the loadgen must run on the same host as the server.
    """
    chaos = list(chaos or [])
    bench = get_benchmark(benchmark)
    shape = tuple(shape
                  or tuple(min(extent, 64) for extent in bench.default_shape))
    first = ExecutionRequest.for_benchmark(benchmark, shape=shape, seed=seed,
                                           return_result=False)
    log.info("chaos loadgen: %s for %.1fs over %d shards, events: %s",
             benchmark, duration_s, shards,
             ",".join(f"{e['action']}:t={e['t']}" for e in chaos) or "none")

    responses: List[object] = []
    priorities: List[str] = []
    applied: List[Dict[str, object]] = []
    stop_load = threading.Event()

    if connect is not None:
        return _run_chaos_remote(
            first, chaos, duration_s, connect, transport=transport,
            auth_key=auth_key, wave_size=wave_size, wave_gap_s=wave_gap_s,
            recovery_timeout_s=recovery_timeout_s)

    service = StencilService(
        device=device, store=store, batch_window=window_ms / 1e3,
        max_batch=max_batch, shards=shards,
        shard_timeout_s=shard_timeout_s, max_respawns=max_respawns,
    )
    with ServiceClient(service) as client:
        client.execute(_chaos_wave(first, 1)[0])  # warm the hot digest
        handles = service.executor.handles if service.executor else []

        def load() -> None:
            while not stop_load.is_set():
                wave = _chaos_wave(first, wave_size)
                rows = client.execute_many(wave, raise_on_error=False)
                responses.extend(rows)
                priorities.extend(request.priority for request in wave)
                if stop_load.wait(wave_gap_s):
                    break

        loader = threading.Thread(target=load, name="chaos-load", daemon=True)
        started = time.perf_counter()
        loader.start()
        try:
            victim_rotation = 0
            for event in chaos:
                delay = float(event["t"]) - (time.perf_counter() - started)
                if delay > 0:
                    time.sleep(delay)
                target = event.get("shard")
                if target is None:
                    # Next available shard, round-robin over events, so
                    # kill+hang hit different shards by default.
                    candidates = [h for h in handles if h.available]
                    if not candidates:
                        candidates = handles
                    handle = candidates[victim_rotation % len(candidates)]
                    victim_rotation += 1
                else:
                    handle = handles[int(target)]
                record = {
                    "action": event["action"],
                    "t": float(event["t"]),
                    "shard": handle.index,
                    "pid": handle.process.pid,
                    "requests_at_event": handle.requests,
                }
                log.info("chaos: %s -> shard %d (pid %s) at t=%.2fs",
                         event["action"], handle.index, handle.process.pid,
                         time.perf_counter() - started)
                os.kill(handle.process.pid,
                        _CHAOS_SIGNALS[str(event["action"])])
                applied.append(record)
            remaining = duration_s - (time.perf_counter() - started)
            if remaining > 0:
                time.sleep(remaining)
        finally:
            stop_load.set()
            loader.join(timeout=60)
        # Recovery settle: keep trickling traffic until every victim's
        # shard is back in rotation and has served past its at-event count.
        deadline = time.monotonic() + recovery_timeout_s

        def recovered() -> bool:
            return all(
                handles[int(rec["shard"])].available
                and handles[int(rec["shard"])].requests
                > int(rec["requests_at_event"])
                for rec in applied
            )
        while not recovered() and time.monotonic() < deadline:
            wave = _chaos_wave(first, wave_size)
            rows = client.execute_many(wave, raise_on_error=False)
            responses.extend(rows)
            priorities.extend(request.priority for request in wave)
            time.sleep(0.05)
        wall = time.perf_counter() - started
        # Take the verdict while the fleet is still up: after the ``with``
        # block the client shuts the shards down and nothing is "available".
        fleet_recovered = recovered()
        stats = client.stats()

    summary = _summarize_chaos_responses(responses, priorities)
    service_section = dict(stats.get("service") or {})
    shard_section = dict(service_section.get("shards") or {})
    per_shard = list(shard_section.get("per_shard") or [])
    report: Dict[str, object] = {
        "benchmark": benchmark,
        "mode": "in-process",
        "duration_s": duration_s,
        "chaos": applied,
        "wall_s": wall,
        "requests_per_s": (summary["requests"] / wall) if wall else 0.0,
        **summary,
        "shards": len(per_shard),
        "shard_requests": [int(row.get("requests") or 0)
                           for row in per_shard],
        "shard_restarts": int(service_section.get("shard_restarts") or 0),
        "shard_redispatches": int(
            service_section.get("shard_redispatches") or 0),
        "recovered": fleet_recovered,
        "service_stats": stats,
    }
    return report


def _run_chaos_remote(
    first: ExecutionRequest,
    chaos: List[Dict[str, object]],
    duration_s: float,
    connect: Tuple[str, int],
    transport: str = "tcp",
    auth_key: Optional[str] = None,
    wave_size: int = 8,
    wave_gap_s: float = 0.02,
    recovery_timeout_s: float = 20.0,
) -> Dict[str, object]:
    """Chaos against a running ``repro serve`` on the *same host*: victim
    PIDs come from the server's per-shard stats rows."""
    from concurrent.futures import ThreadPoolExecutor

    from ..client import ClientConfig, StencilClient, TransportError

    client = StencilClient(ClientConfig(host=connect[0], port=connect[1],
                                        transport=transport,
                                        auth_key=auth_key))
    responses: List[object] = []
    priorities: List[str] = []
    applied: List[Dict[str, object]] = []
    stop_load = threading.Event()
    lock = threading.Lock()

    def per_shard_rows() -> List[Dict[str, object]]:
        service_section = dict((client.stats() or {}).get("service") or {})
        shard_section = dict(service_section.get("shards") or {})
        return list(shard_section.get("per_shard") or [])

    def fire(request: ExecutionRequest) -> None:
        try:
            row = client.execute(request)
        except TransportError as error:
            log.warning("chaos request failed in transport: %s", error)
            row = None
        with lock:
            responses.append(row)
            priorities.append(request.priority)

    try:
        client.execute(_chaos_wave(first, 1)[0])  # warm the hot digest
        pool = ThreadPoolExecutor(max_workers=max(2, wave_size))

        def load() -> None:
            while not stop_load.is_set():
                wave = _chaos_wave(first, wave_size)
                list(pool.map(fire, wave))
                if stop_load.wait(wave_gap_s):
                    break

        loader = threading.Thread(target=load, name="chaos-load", daemon=True)
        started = time.perf_counter()
        loader.start()
        try:
            victim_rotation = 0
            for event in chaos:
                delay = float(event["t"]) - (time.perf_counter() - started)
                if delay > 0:
                    time.sleep(delay)
                rows = per_shard_rows()
                target = event.get("shard")
                if target is None:
                    candidates = [row for row in rows if row.get("alive")]
                    if not candidates:
                        candidates = rows
                    row = candidates[victim_rotation % len(candidates)]
                    victim_rotation += 1
                else:
                    row = next(r for r in rows
                               if int(r.get("shard", -1)) == int(target))
                pid = int(row["pid"])
                record = {
                    "action": event["action"],
                    "t": float(event["t"]),
                    "shard": int(row["shard"]),
                    "pid": pid,
                    "requests_at_event": int(row.get("requests") or 0),
                }
                log.info("chaos: %s -> shard %s (pid %d)",
                         event["action"], row["shard"], pid)
                os.kill(pid, _CHAOS_SIGNALS[str(event["action"])])
                applied.append(record)
            remaining = duration_s - (time.perf_counter() - started)
            if remaining > 0:
                time.sleep(remaining)
        finally:
            stop_load.set()
            loader.join(timeout=60)

        def recovered_now(rows: List[Dict[str, object]]) -> bool:
            # A respawned shard restarts its child-side counters, so
            # "serves again" is: alive and served at least one request
            # since the respawn.
            by_index = {int(row.get("shard", -1)): row for row in rows}
            return all(
                (by_index.get(int(rec["shard"])) or {}).get("alive")
                and int((by_index.get(int(rec["shard"])) or {})
                        .get("requests") or 0) >= 1
                and int((by_index.get(int(rec["shard"])) or {})
                        .get("respawns") or 0) >= 1
                for rec in applied
            )

        deadline = time.monotonic() + recovery_timeout_s
        rows = per_shard_rows()
        while not recovered_now(rows) and time.monotonic() < deadline:
            wave = _chaos_wave(first, wave_size)
            list(pool.map(fire, wave))
            time.sleep(0.1)
            rows = per_shard_rows()
        pool.shutdown(wait=True)
        wall = time.perf_counter() - started
        stats = client.stats() or {}
    finally:
        client.close()

    summary = _summarize_chaos_responses(responses, priorities)
    service_section = dict(stats.get("service") or {})
    shard_section = dict(service_section.get("shards") or {})
    per_shard = list(shard_section.get("per_shard") or [])
    return {
        "benchmark": first.benchmark,
        "mode": transport,
        "duration_s": duration_s,
        "chaos": applied,
        "wall_s": wall,
        "requests_per_s": (summary["requests"] / wall) if wall else 0.0,
        **summary,
        "shards": len(per_shard),
        "shard_requests": [int(row.get("requests") or 0)
                           for row in per_shard],
        "shard_restarts": int(service_section.get("shard_restarts") or 0),
        "shard_redispatches": int(
            service_section.get("shard_redispatches") or 0),
        "recovered": recovered_now(per_shard),
        "service_stats": stats,
    }


def format_chaos_loadgen(report: Dict[str, object]) -> str:
    """Human-readable (and CI-greppable) chaos report."""
    lines = [
        f"chaos loadgen {report['benchmark']}: {report['requests']} requests "
        f"over {report['wall_s']:.1f}s ({report['mode']}, "
        f"{report['shards']} shards)",
        "  events: " + (", ".join(
            f"{e['action']} shard {e['shard']} (pid {e['pid']}) "
            f"at t={e['t']:g}s" for e in report.get("chaos") or []
        ) or "none"),
        f"  outcome: served={report['served']} failed={report['failed']} "
        f"lost={report['lost']} shed={report['shed']} "
        f"rejected={report['rejected']}",
        f"  high p99: {report['high_p99_ms']:.2f} ms",
        f"  healing: shard_restarts={report['shard_restarts']} "
        f"shard_redispatches={report['shard_redispatches']} "
        f"recovered={report['recovered']}",
        f"  per-shard requests: {report.get('shard_requests')}",
    ]
    return "\n".join(lines)


def check_chaos(report: Dict[str, object],
                p99_ms: Optional[float] = None) -> List[str]:
    """The chaos contract (empty = pass): nothing user-visible broke.

    * zero failed requests and zero lost replies;
    * every chaos victim was respawned (``shard_restarts >= len(chaos)``)
      and the fleet recovered (victims alive and serving again);
    * optionally, high-priority p99 stayed within ``p99_ms``.
    """
    problems: List[str] = []
    if int(report.get("failed") or 0) > 0:
        problems.append(f"{report['failed']} request(s) failed")
    if int(report.get("lost") or 0) > 0:
        problems.append(f"{report['lost']} reply(ies) were lost")
    events = list(report.get("chaos") or [])
    if events:
        restarts = int(report.get("shard_restarts") or 0)
        if restarts < len(events):
            problems.append(
                f"expected >= {len(events)} shard restart(s), got {restarts}")
        if not report.get("recovered"):
            problems.append(
                "fleet did not recover (a victim shard is dead or idle)")
    if p99_ms is not None and float(report.get("high_p99_ms") or 0.0) > p99_ms:
        problems.append(
            f"high-priority p99 {report['high_p99_ms']:.2f} ms exceeds "
            f"bound {p99_ms:g} ms")
    return problems


# ---------------------------------------------------------------------------
# Job-durability drill: SIGKILL the server mid-job, restart, assert recovery
# ---------------------------------------------------------------------------


def _free_port() -> int:
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _scrape_metric(host: str, port: int, name: str) -> Optional[float]:
    """One unlabelled sample from the telemetry sidecar's ``/metrics``."""
    import urllib.request

    with urllib.request.urlopen(f"http://{host}:{port}/metrics",
                                timeout=10) as response:
        text = response.read().decode("utf-8")
    for line in text.splitlines():
        if line.startswith(f"{name} "):
            return float(line.split()[1])
    return None


def _spawn_serve(host: str, ports: Dict[str, int], job_dir: str,
                 checkpoint_every: int, auth_key: Optional[str],
                 log_path: str):
    """One ``repro serve`` subprocess configured for durable jobs."""
    import subprocess
    import sys

    argv = [
        sys.executable, "-m", "repro", "serve",
        "--host", host,
        "--port", str(ports["tcp"]),
        "--http-port", str(ports["http"]),
        "--metrics-port", str(ports["metrics"]),
        "--no-store",
        "--window-ms", "1",
        "--job-dir", job_dir,
        "--checkpoint-every", str(checkpoint_every),
        "--log-level", "info",
    ]
    if auth_key:
        argv += ["--auth-key", auth_key]
    log_file = open(log_path, "ab")
    try:
        return subprocess.Popen(argv, stdout=log_file, stderr=log_file)
    finally:
        log_file.close()


def _wait_ready(make_client, timeout_s: float = 30.0):
    """A client whose endpoint answers ping, or raise after ``timeout_s``."""
    deadline = time.monotonic() + timeout_s
    last_error: Optional[Exception] = None
    while time.monotonic() < deadline:
        client = make_client()
        try:
            if client.ping(timeout_s=2.0):
                return client
        except Exception as error:  # noqa: BLE001 - still booting
            last_error = error
        client.close()
        time.sleep(0.05)
    raise RuntimeError(f"server did not become ready within {timeout_s:g}s "
                       f"(last error: {last_error})")


def run_job_drill(
    benchmark: str = "heat",
    steps: int = 512,
    checkpoint_every: int = 8,
    shape: Optional[Sequence[int]] = None,
    seed: int = 0,
    job_dir: Optional[str] = None,
    auth_key: Optional[str] = "drill-key",
    kill_after_steps: Optional[int] = None,
    timeout_s: float = 180.0,
    host: str = "127.0.0.1",
) -> Dict[str, object]:
    """The durability drill: kill -9 a server mid-job, restart, verify.

    A ``repro serve`` subprocess (authenticated HTTP + durable jobs under
    a fresh ``--job-dir``) receives one long checkpointed job; once its
    status shows at least ``kill_after_steps`` completed (default: one
    checkpoint segment) the server is SIGKILLed — no drain, no flush, the
    exact failure the checkpoint format exists for.  A second server is
    started on the same ports with the same ``--job-dir``; the drill then
    asserts the job **resumed** (``resumes == 1``, never restarted from
    step 0), **completed**, and produced a final grid **bit-identical** to
    the uninterrupted local ``benchmark.iterate`` reference, and that the
    restarted server's ``/metrics`` shows ``repro_job_checkpoints_total
    >= 1`` and ``repro_job_resumes_total == 1``.
    """
    import shutil
    import tempfile

    from ..client import ClientConfig, StencilClient

    bench = get_benchmark(benchmark)
    shape = tuple(shape
                  or tuple(min(extent, 64) for extent in bench.default_shape))
    inputs = bench.make_inputs(shape, seed)
    expected = np.asarray(bench.iterate(inputs, steps), dtype=np.float64)
    kill_after = int(kill_after_steps or checkpoint_every)

    owns_dir = job_dir is None
    job_dir = job_dir or tempfile.mkdtemp(prefix="repro-job-drill-")
    ports = {"tcp": _free_port(), "http": _free_port(),
             "metrics": _free_port()}
    log_path = os.path.join(job_dir, "serve.log")
    problems: List[str] = []
    report: Dict[str, object] = {
        "benchmark": benchmark,
        "steps": steps,
        "checkpoint_every": checkpoint_every,
        "shape": list(shape),
        "job_dir": job_dir,
        "server_log": log_path,
        "authenticated": bool(auth_key),
    }

    def make_client() -> StencilClient:
        return StencilClient(ClientConfig(host=host, port=ports["http"],
                                          transport="http",
                                          auth_key=auth_key))

    started = time.perf_counter()
    server = _spawn_serve(host, ports, job_dir, checkpoint_every, auth_key,
                          log_path)
    try:
        client = _wait_ready(make_client)
        try:
            request = ExecutionRequest(
                inputs=[np.array(grid) for grid in inputs],
                benchmark=benchmark, steps=steps,
            )
            job = client.submit_job(request,
                                    checkpoint_every=checkpoint_every)
            job_id = str(job["job_id"])
            report["job_id"] = job_id
            # Wait for the first durable progress, then pull the plug.
            completed_at_kill = 0
            kill_deadline = time.monotonic() + timeout_s
            while True:
                status = client.job_status(job_id)
                completed_at_kill = int(status.get("completed_steps") or 0)
                if status.get("status") not in ("queued", "running"):
                    problems.append(
                        f"job reached {status.get('status')!r} before the "
                        "kill — grow --steps or shrink --checkpoint-every")
                    break
                if completed_at_kill >= kill_after:
                    break
                if time.monotonic() > kill_deadline:
                    problems.append(
                        f"no checkpointed progress within {timeout_s:g}s")
                    break
                time.sleep(0.01)
        finally:
            client.close()
        report["completed_steps_at_kill"] = completed_at_kill
        log.info("job drill: SIGKILL server (pid %d) at %d/%d steps",
                 server.pid, completed_at_kill, steps)
        os.kill(server.pid, signal.SIGKILL)
        server.wait(timeout=30)

        # The restart: same ports, same --job-dir, nothing else carried over.
        server = _spawn_serve(host, ports, job_dir, checkpoint_every,
                              auth_key, log_path)
        client = _wait_ready(make_client)
        try:
            final = client.wait_job(job_id, timeout_s=timeout_s)
            report["final_status"] = final.get("status")
            report["resumes"] = int(final.get("resumes") or 0)
            report["completed_steps"] = int(final.get("completed_steps") or 0)
            if final.get("status") == "completed":
                _job, result = client.job_result(job_id)
                report["bit_identical"] = bool(
                    result.dtype == expected.dtype
                    and result.shape == expected.shape
                    and result.tobytes() == expected.tobytes()
                )
            else:
                report["bit_identical"] = False
                problems.append(
                    f"job ended {final.get('status')!r} after restart: "
                    f"{final.get('error')}")
        finally:
            client.close()
        report["metrics"] = {
            "repro_job_checkpoints_total": _scrape_metric(
                host, ports["metrics"], "repro_job_checkpoints_total"),
            "repro_job_resumes_total": _scrape_metric(
                host, ports["metrics"], "repro_job_resumes_total"),
        }
    finally:
        if server.poll() is None:
            server.terminate()
            try:
                server.wait(timeout=15)
            except Exception:  # noqa: BLE001 - last resort
                server.kill()
                server.wait(timeout=15)
    report["wall_s"] = time.perf_counter() - started
    report["problems"] = problems
    if owns_dir and not problems and report.get("bit_identical"):
        shutil.rmtree(job_dir, ignore_errors=True)
    return report


def format_job_drill(report: Dict[str, object]) -> str:
    """Human-readable (and CI-greppable) durability-drill report."""
    metrics = dict(report.get("metrics") or {})
    lines = [
        f"job drill {report['benchmark']}: {report['steps']} steps, "
        f"checkpoint every {report['checkpoint_every']} "
        f"({'authenticated ' if report.get('authenticated') else ''}http)",
        f"  killed -9 at {report.get('completed_steps_at_kill')}/"
        f"{report['steps']} steps, restarted with the same --job-dir",
        f"  outcome: status={report.get('final_status')} "
        f"resumes={report.get('resumes')} "
        f"bit_identical={report.get('bit_identical')}",
        f"  metrics: checkpoints_total="
        f"{metrics.get('repro_job_checkpoints_total')} "
        f"resumes_total={metrics.get('repro_job_resumes_total')}",
        f"  wall: {float(report.get('wall_s') or 0.0):.1f}s "
        f"(log: {report.get('server_log')})",
    ]
    for problem in report.get("problems") or []:
        lines.append(f"  problem: {problem}")
    return "\n".join(lines)


def check_job_drill(report: Dict[str, object]) -> List[str]:
    """The durability contract (empty = pass)."""
    problems = list(report.get("problems") or [])
    if report.get("final_status") != "completed":
        problems.append(
            f"job did not complete (status {report.get('final_status')!r})")
    if not report.get("bit_identical"):
        problems.append(
            "recovered result is not bit-identical to the uninterrupted run")
    kill_point = int(report.get("completed_steps_at_kill") or 0)
    if not 0 < kill_point < int(report.get("steps") or 0):
        problems.append(
            f"kill point {kill_point} was not mid-trajectory")
    if int(report.get("resumes") or 0) < 1:
        problems.append("job reports zero resumes — it never crashed?")
    metrics = dict(report.get("metrics") or {})
    checkpoints = metrics.get("repro_job_checkpoints_total")
    if checkpoints is None or checkpoints < 1:
        problems.append(
            f"repro_job_checkpoints_total = {checkpoints}, expected >= 1")
    resumes = metrics.get("repro_job_resumes_total")
    if resumes != 1:
        problems.append(
            f"repro_job_resumes_total = {resumes}, expected exactly 1")
    return problems


__all__ = [
    "CHAOS_ACTIONS",
    "build_mixed_requests",
    "build_requests",
    "check_batching",
    "check_chaos",
    "check_job_drill",
    "check_no_high_shed",
    "check_sharding",
    "format_chaos_loadgen",
    "format_job_drill",
    "format_loadgen",
    "format_mixed_loadgen",
    "parse_chaos",
    "parse_mix",
    "run_chaos_loadgen",
    "run_job_drill",
    "run_loadgen",
    "run_mixed_loadgen",
]
