"""The asyncio execution service: micro-batching server + in-process client.

:class:`StencilService` is a long-lived serving loop for compiled stencil
kernels.  Concurrent requests are collected from an ``asyncio.Queue`` for a
short *batch window* (or until ``max_batch`` arrive), grouped by routing key
— structural digest + per-item input signature + size environment — and each
group is executed as **one** stacked NumPy call through
:meth:`~repro.backend.base.NumpyBackend.run_batched`: one compilation (the
cache is keyed by the per-item signature), one vectorized sweep, N responses.

Request routing consults the :class:`~repro.service.registry.TunedKernelRegistry`,
so the best rewrite variant/configuration found by past ``repro tune``
sessions is applied to incoming traffic automatically; cold digests are
served by the default lowering and can enqueue a background tune on the
engine.

With ``shards=N`` the numeric work of each group is dispatched round-robin
to N pre-forked worker processes (see :mod:`repro.service.shards`): request
grids travel through shared-memory slabs (no pickling of arrays), programs
cross the process boundary once per (digest, variant) per shard, and groups
on different shards sweep concurrently on a multi-core machine while this
process keeps only admission, batching and I/O.

:class:`ServiceClient` wraps a service in a background event-loop thread and
exposes blocking ``execute`` / ``execute_many`` calls — the in-process form
used by tests, the experiment drivers and the load generator.
:func:`serve_tcp` exposes the same service as a JSON-lines TCP endpoint for
``repro serve`` / ``repro submit``.
"""

from __future__ import annotations

import asyncio
import hmac
import json
import logging
import signal
import threading
import time
import weakref
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..apps.base import squeeze_result
from ..backend.base import NumpyBackend
from ..backend.cache import CompilationCache
from ..backend.plan import iterate_state_generic
from ..backend.fuse import replay_pool
from ..backend.numpy_backend import CompileError
from ..core.serialize import SerializationError, program_to_dict
from ..engine.store import ResultsStore
from ..telemetry import registry as _telemetry
from ..telemetry.registry import BATCH_BUCKETS
from ..telemetry.trace import TraceRing
from .jobs import JobError, JobManager, JobNotFound
from .metrics import shards_section, stats_report
from .registry import DigestCircuitBreaker, TunedKernelRegistry
from .requests import (
    CANCELLED,
    DEADLINE_EXCEEDED,
    NOT_FOUND,
    PRIORITIES,
    REQUEST_TOO_LARGE,
    UNAUTHORIZED,
    UNAVAILABLE,
    ADMISSION_REJECTED,
    BAD_REQUEST,
    ExecutionRequest,
    ExecutionResponse,
    ServiceError,
)
from .shards import ShardedExecutor, ShardUnavailable
from .supervisor import ShardSupervisor

log = logging.getLogger("repro.service")

# Request-path instruments (process-wide; shard processes run their own and
# the /metrics route merges the snapshots).
_REQUESTS_TOTAL = _telemetry.counter(
    "repro_requests_total", "Requests served to completion."
)
_REQUEST_ERRORS_TOTAL = _telemetry.counter(
    "repro_request_errors_total", "Requests answered with an in-band error."
)
_BATCHES_TOTAL = _telemetry.counter(
    "repro_batches_total", "Micro-batch groups executed."
)
_BATCHED_REQUESTS_TOTAL = _telemetry.counter(
    "repro_batched_requests_total",
    "Requests served inside a batch of two or more.",
)
_SHARD_FALLBACKS_TOTAL = _telemetry.counter(
    "repro_shard_fallbacks_total",
    "Groups served in-process because their program cannot cross a shard pipe.",
)
_SHARD_REDISPATCHES_TOTAL = _telemetry.counter(
    "repro_shard_redispatches_total",
    "Groups redispatched away from a dead or unresponsive shard.",
)
_BREAKER_OPENS_TOTAL = _telemetry.counter(
    "repro_breaker_opens_total",
    "Digest circuit breakers tripped open (incl. half-open probes failing).",
)
_BREAKER_QUARANTINED_TOTAL = _telemetry.counter(
    "repro_breaker_quarantined_requests_total",
    "Requests served on the generic local path because their digest is "
    "quarantined by an open circuit breaker.",
)
_REQUEST_LATENCY_SECONDS = _telemetry.histogram(
    "repro_request_latency_seconds",
    "End-to-end request latency (enqueue to response).",
)
_BATCH_SIZE = _telemetry.histogram(
    "repro_batch_size", "Requests per executed micro-batch group.",
    buckets=BATCH_BUCKETS,
)
_SHARD_ROUNDTRIP_SECONDS = _telemetry.histogram(
    "repro_shard_roundtrip_seconds",
    "Wall time of one group's shard dispatch (slab copy, sweep, reply).",
)
_SHEDS_TOTAL = _telemetry.counter(
    "repro_sheds_total",
    "Requests shed past their deadline instead of executing, by priority.",
    label="priority",
)
_REJECTS_TOTAL = _telemetry.counter(
    "repro_rejects_total",
    "Requests pushed back by admission control (429-style), by reason.",
    label="reason",
)

#: Upper bound on one TCP request line / HTTP body unless overridden.
DEFAULT_MAX_REQUEST_BYTES = 32 * 1024 * 1024


@dataclass
class _DeadlineShed:
    """A ``steps > 1`` request expired at a segment boundary mid-trajectory.

    Stands in a group's output slot (computed on the executor thread) so
    the response loop — back on the event loop — turns it into a
    structured ``DeadlineExceeded`` shed instead of a result.
    """

    completed_steps: int
    steps: int


@dataclass
class _Pending:
    """One queued request together with its resolved execution plan."""

    request: ExecutionRequest
    program: object                   # the Lambda chosen by the plan
    variant: str
    plan_source: str
    digest: str
    benchmark: Optional[str]
    key: Tuple
    future: "asyncio.Future[ExecutionResponse]"
    enqueued_at: float = field(default_factory=time.perf_counter)
    admit_ms: float = 0.0
    priority: str = "normal"
    expires_at: Optional[float] = None    # perf_counter deadline, or None


class _PriorityQueues:
    """Three FIFO lanes drained strictly ``high`` → ``normal`` → ``batch``.

    A single wake event replaces ``asyncio.Queue``'s internals: the batcher
    is the only consumer and runs on the loop thread, so pops never race.
    Under pressure (more queued work than one micro-batch can hold) the
    drain order *is* the priority policy — high-class work always reaches a
    batch slot before batch-class work does.
    """

    def __init__(self) -> None:
        self.lanes: Dict[str, deque] = {p: deque() for p in PRIORITIES}
        self._event = asyncio.Event()

    def put(self, item: _Pending) -> None:
        self.lanes[item.priority].append(item)
        self._event.set()

    def get_nowait(self) -> _Pending:
        for priority in PRIORITIES:
            lane = self.lanes[priority]
            if lane:
                item = lane.popleft()
                if self.qsize() == 0:
                    self._event.clear()
                return item
        raise asyncio.QueueEmpty

    async def get(self) -> _Pending:
        while True:
            try:
                return self.get_nowait()
            except asyncio.QueueEmpty:
                self._event.clear()
                await self._event.wait()

    def qsize(self) -> int:
        return sum(len(lane) for lane in self.lanes.values())

    def depth(self, priority: str) -> int:
        return len(self.lanes[priority])

    def empty(self) -> bool:
        return self.qsize() == 0

    def evict_below(self, priority: str) -> Optional[_Pending]:
        """Pop one queued item of a class strictly below ``priority``.

        Victims come from the lowest-priority non-empty lane, oldest first
        (the entry closest to its deadline anyway) — this is how a full
        queue makes room for arriving high-priority work instead of
        bouncing it.
        """
        rank = PRIORITIES.index(priority)
        for lower in reversed(PRIORITIES[rank + 1:]):
            lane = self.lanes[lower]
            if lane:
                return lane.popleft()
        return None

    def drain(self) -> List[_Pending]:
        items: List[_Pending] = []
        for priority in PRIORITIES:
            lane = self.lanes[priority]
            items.extend(lane)
            lane.clear()
        self._event.clear()
        return items


class StencilService:
    """An async, micro-batching execution service over the compiled backend.

    Parameters
    ----------
    device:
        Device model whose tuned results the registry consults.
    store:
        A :class:`~repro.engine.store.ResultsStore`, a path to one, or
        ``None`` — the source of tuned variants (and the target of
        background tunes).
    cache:
        The service's compilation cache.  Defaults to a *fresh* cache so the
        serving stats (one compilation per hot digest) are observable in
        isolation from the process-wide cache.
    batch_window:
        How long (seconds) the batcher waits for more requests after the
        first one arrives.  A full ``max_batch`` flushes immediately.
    max_batch:
        Upper bound on requests per micro-batch.
    crosscheck:
        Re-execute every batched request individually and require the
        stacked result to be **bit-identical** — the belt-and-braces mode
        the acceptance tests run.  With plans enabled this also
        cross-checks the plan path against the generic compiled path.
    use_plans:
        Serve through cached execution plans (pooled buffers + replayable
        ``out=`` tapes): one plan per (program structure, input shapes),
        reused across requests so the steady serving path neither
        re-dispatches nor allocates.  Batched groups copy request grids
        straight into the plan's one pooled stacked buffer set.
    auto_tune:
        Enqueue one background ``SearchEngine`` tune per cold benchmark
        digest (requires a persistent, file-backed store).
    shards:
        ``0`` (default) executes groups on this process's executor
        threads.  ``N >= 1`` pre-forks N shard processes and dispatches
        each group's numeric sweep to one of them round-robin; programs a
        shard cannot receive (unserialisable, e.g. closure-captured
        constant arrays) transparently fall back to in-process execution.
    max_queue_depth:
        Global admission cap: when this many requests are already queued,
        new work is rejected in-band with :data:`ADMISSION_REJECTED` and a
        ``retry_after_ms`` hint instead of queueing unboundedly — except
        that an arriving *higher*-priority request evicts one queued
        lower-priority request to claim its slot.  ``None`` = unbounded
        (the pre-admission-control behaviour).
    max_inflight_per_digest:
        Per-digest admission limit: at most this many requests for one
        structural digest may be admitted-but-unfinished at a time; the
        excess is rejected with ``retry_after_ms``.  Protects the batcher
        from one hot key starving every other digest.  ``None`` = no limit.
    shard_timeout_s:
        Per-round-trip watchdog on shard dispatches: a shard that neither
        replies nor dies within this window is declared failed, its group
        is redispatched, and the supervisor respawns it.  ``None``
        disables the watchdog (dead shards are still detected via pipe
        errors and process liveness).
    supervise:
        Run a :class:`~repro.service.supervisor.ShardSupervisor` alongside
        a sharded service: dead/failed shards are respawned in the
        background (bounded exponential backoff, ``max_respawns`` per
        shard) and re-warmed from the program registry before rejoining
        the rotation.  Ignored when ``shards == 0``.
    max_respawns:
        Per-shard respawn budget for the supervisor.
    breaker_threshold:
        Digest circuit breaker: after this many *consecutive* fast-path
        failures (plan capture, shard dispatch, execution) for one digest,
        quarantine it to the generic unfused local path for
        ``breaker_cooldown_s``, then let a single half-open probe try the
        fast path again.  ``0`` disables the breaker.
    job_dir:
        Directory for durable-job checkpoints (:mod:`~repro.service.jobs`).
        ``None`` keeps jobs memory-only (no recovery across restarts).
    checkpoint_every:
        Steps per durable-job execution segment — a checkpoint is
        atomically persisted after each segment, and the synchronous
        ``steps > 1`` path re-checks deadlines at the same cadence.
    job_ttl_s:
        How long terminal jobs (and their on-disk results) are retained.
    max_resident_jobs:
        At most this many completed results stay resident in memory;
        older ones drop to disk and reload on demand.
    """

    def __init__(
        self,
        device: str = "nvidia",
        store: Union[ResultsStore, str, None] = None,
        cache: Optional[CompilationCache] = None,
        batch_window: float = 0.002,
        max_batch: int = 64,
        crosscheck: bool = False,
        auto_tune: bool = False,
        tune_budget: int = 20,
        use_plans: bool = True,
        shards: int = 0,
        trace_capacity: int = 256,
        trace_slow_ms: float = 50.0,
        max_queue_depth: Optional[int] = None,
        max_inflight_per_digest: Optional[int] = None,
        shard_timeout_s: Optional[float] = 30.0,
        supervise: bool = True,
        max_respawns: int = 5,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 5.0,
        job_dir: Optional[str] = None,
        checkpoint_every: int = 16,
        job_ttl_s: float = 3600.0,
        max_resident_jobs: int = 64,
    ) -> None:
        if max_batch < 1:
            raise ServiceError("max_batch must be >= 1")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ServiceError("max_queue_depth must be >= 1 (or None)")
        if max_inflight_per_digest is not None and max_inflight_per_digest < 1:
            raise ServiceError("max_inflight_per_digest must be >= 1 (or None)")
        self.registry = TunedKernelRegistry(store=store, device=device)
        self.cache = cache if cache is not None else CompilationCache()
        self.backend = NumpyBackend(cache=self.cache, fallback=False)
        self.use_plans = use_plans
        self.batch_window = batch_window
        self.max_batch = max_batch
        self.crosscheck = crosscheck
        self.auto_tune = auto_tune
        self.tune_budget = tune_budget
        self.device = device
        self.shards = int(shards or 0)
        self.shard_timeout_s = shard_timeout_s
        self.executor: Optional[ShardedExecutor] = (
            ShardedExecutor(self.shards, use_plans=use_plans,
                            timeout_s=shard_timeout_s)
            if self.shards > 0 else None
        )
        self.supervise = bool(supervise)
        self.max_respawns = int(max_respawns)
        self.supervisor: Optional[ShardSupervisor] = None
        self.breakers = DigestCircuitBreaker(
            threshold=breaker_threshold, cooldown_s=breaker_cooldown_s)
        self.max_queue_depth = max_queue_depth
        self.max_inflight_per_digest = max_inflight_per_digest
        self._wires: Dict[str, Dict] = {}      # (digest:variant) -> wire dict
        self._unshardable: set = set()         # program keys that won't pickle
        self._queues: Optional[_PriorityQueues] = None
        self._digest_inflight: Dict[str, int] = {}
        self._batcher: Optional[asyncio.Task] = None
        self._inflight: set = set()
        self._tuning_digests: set = set()
        self._tune_tasks: List[asyncio.Future] = []
        # Serving counters (single-threaded: only the loop thread mutates).
        self.requests_served = 0
        self.batches_formed = 0
        self.batched_requests = 0
        self.largest_batch = 0
        self.crosschecks_passed = 0
        self.background_tunes = 0
        self.request_errors = 0
        self.plans_prewarmed = 0
        self.shard_fallbacks = 0
        self.shard_redispatches = 0
        self.quarantined_requests = 0
        #: Admission-control outcomes (separate from request_errors so the
        #: PR 7 error accounting keeps meaning "execution failed").
        self.sheds: Dict[str, int] = {priority: 0 for priority in PRIORITIES}
        self.rejects: Dict[str, int] = {}
        #: Request-lifecycle traces (``repro trace`` / the /trace route).
        self.tracer = TraceRing(capacity=trace_capacity, slow_ms=trace_slow_ms)
        #: Durable multi-timestep jobs: checkpointed execution + recovery.
        self.checkpoint_every = int(checkpoint_every)
        self.jobs = JobManager(
            backend=self.backend,
            resolve=self._resolve_job,
            job_dir=job_dir,
            checkpoint_every=checkpoint_every,
            job_ttl_s=job_ttl_s,
            max_resident=max_resident_jobs,
        )
        self._register_gauges()

    def _resolve_job(self, benchmark: str, shape: Tuple[int, ...],
                     size_env: Dict[str, int]):
        """The job manager's program resolver: same routing as ``_admit``,
        so a resumed job replays through the identical tuned variant."""
        from ..apps.suite import get_benchmark

        plan = self.registry.plan_for(benchmark=benchmark)
        program, _variant, _source = plan.program_for(tuple(shape))
        try:
            carry = get_benchmark(benchmark).carry_spec()
        except Exception:  # noqa: BLE001 - unknown key: default carry
            carry = None
        return program, carry, plan.digest

    def _register_gauges(self) -> None:
        """Point the live service gauges at this instance (scrape-time only).

        Gauge callbacks live in the process-wide registry, so they hold the
        service through a weakref — a stopped, dropped service reads as
        zero rather than being pinned alive by observability plumbing.
        When several services coexist (tests), the newest registration
        wins, matching the "one serving loop per process" deployment shape.
        """
        service_ref = weakref.ref(self)

        def from_service(read):
            def sample() -> float:
                service = service_ref()
                return float(read(service)) if service is not None else 0.0
            return sample

        _telemetry.gauge(
            "repro_queue_depth", "Requests admitted but not yet batch-formed.",
            fn=from_service(
                lambda s: s._queues.qsize() if s._queues is not None else 0
            ),
        )
        for priority in PRIORITIES:
            _telemetry.gauge(
                f"repro_queue_depth_{priority}",
                f"Queued {priority}-priority requests awaiting a batch slot.",
                fn=from_service(
                    lambda s, priority=priority: (
                        s._queues.depth(priority)
                        if s._queues is not None else 0
                    )
                ),
            )
        for stat in ("hits", "misses", "evictions", "entries"):
            _telemetry.gauge(
                f"repro_service_compilation_cache_{stat}",
                f"Service compilation cache {stat}.",
                fn=from_service(
                    lambda s, stat=stat: s.cache.stats()[stat]
                ),
            )
            _telemetry.gauge(
                f"repro_plan_cache_{stat}",
                f"Service plan cache {stat}.",
                fn=from_service(
                    lambda s, stat=stat: s.backend.plans.stats()[stat]
                ),
            )

    # -- lifecycle -----------------------------------------------------------
    async def start(self) -> "StencilService":
        if self._batcher is not None:
            raise ServiceError("service already started")
        self._queues = _PriorityQueues()
        self._batcher = asyncio.get_running_loop().create_task(self._batch_loop())
        if self.executor is not None and self.supervise:
            self.supervisor = ShardSupervisor(
                self.executor, self._wires, max_respawns=self.max_respawns)
            self.supervisor.start()
        # Durable-job recovery: resume incomplete jobs from their newest
        # valid checkpoint before traffic arrives (disk scan off the loop).
        resumed = await asyncio.get_running_loop().run_in_executor(
            None, self.jobs.recover
        )
        if resumed:
            log.info("resumed %d incomplete durable job(s)", resumed)
        return self

    async def stop(self) -> None:
        if self.supervisor is not None:
            await self.supervisor.stop()
            self.supervisor = None
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        if self._inflight:
            # Sharded groups are dispatched as tasks; let in-flight sweeps
            # finish (their callers are still awaiting futures).
            await asyncio.gather(*list(self._inflight),
                                 return_exceptions=True)
        if self._queues is not None:
            # Requests admitted but never executed must not hang their
            # callers: fail them in-band.
            self._fail_group(self._queues.drain(), "service stopped",
                             code=UNAVAILABLE)
        if self._tune_tasks:
            await asyncio.gather(*self._tune_tasks, return_exceptions=True)
        self._tune_tasks.clear()
        await asyncio.get_running_loop().run_in_executor(
            None, self.jobs.close
        )
        if self.executor is not None:
            # Blocking pipe shutdowns; keep them off the event loop.
            await asyncio.get_running_loop().run_in_executor(
                None, self.executor.close
            )
            self.executor = None
        self.registry.close()

    async def __aenter__(self) -> "StencilService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- pre-warming -----------------------------------------------------------
    def prewarm(self, requests: Sequence[ExecutionRequest],
                batch_capacities: Sequence[int] = ()) -> Dict[str, int]:
        """Capture execution plans for these requests off the request path.

        For each request the routing decision is resolved through the tuned
        registry exactly as admission would, the program's execution plan
        (optimized, fused tape) is compiled into the plan cache and its tape
        captured with one real sweep — so the first *single* live request
        for the same (digest, shapes) pays a pure tape replay instead of
        ``plan_build_s``.  ``batch_capacities`` additionally captures the
        *batched* plans micro-batching routes groups through (capacities
        are rounded up to the powers of two the batcher keys plans by), so
        the first live micro-batch is warm too; it defaults to empty
        because a capacity-``C`` plan holds ``C`` stacked copies of every
        buffer — warm exactly the capacities your traffic reaches.  Pure
        backend/registry work, safe to run from any thread before (or
        while) the service loop is serving; typically invoked by ``repro
        serve --prewarm`` between bind and listen.  Returns
        ``{"prewarmed": n, "skipped": m}`` counting per (request ×
        capacity) plan — skipped entries cannot be captured as plans (they
        will be served by the generic path anyway).  In sharded mode the
        same warm-up is forwarded to **every** shard process instead (each
        shard owns its own plan cache), counting one prepared entry per
        (request × capacity × shard).
        """
        prepared = 0
        skipped = 0
        capacities = []
        for requested in batch_capacities:
            capacity = 1
            while capacity < max(1, int(requested)):
                capacity *= 2
            if capacity > 1 and capacity not in capacities:
                capacities.append(capacity)
        if self.executor is not None:
            return self._prewarm_shards(requests, capacities)
        for request in requests:
            try:
                route = self.registry.plan_for(benchmark=request.benchmark,
                                               program=request.program)
                shape = tuple(request.inputs[0].shape) if request.inputs else ()
                program, _variant, _source = route.program_for(shape)
                size_env = request.size_env or None
                if self.use_plans:
                    plan = self.backend.plan(program, request.inputs, size_env)
                    plan.run(request.inputs)  # capture: the tape, off-path
                else:
                    self.backend.run(program, request.inputs, size_env)
                prepared += 1
            except Exception:  # noqa: BLE001 - prewarm is best-effort
                skipped += 1
                continue
            if not self.use_plans:
                continue
            for capacity in capacities:
                try:
                    signature = [
                        ((capacity,) + tuple(grid.shape), str(grid.dtype))
                        for grid in request.inputs
                    ]
                    plan = self.backend.plan(program, signature, size_env,
                                             batched=True)
                    plan.run_batched_parts([request.inputs] * capacity)
                    prepared += 1
                except Exception:  # noqa: BLE001 - prewarm is best-effort
                    skipped += 1
        self.plans_prewarmed += prepared
        return {"prewarmed": prepared, "skipped": skipped}

    def _prewarm_shards(self, requests: Sequence[ExecutionRequest],
                        capacities: List[int]) -> Dict[str, int]:
        """Warm every shard's plan caches (single + batched capacities)."""
        from .shards import ShardError

        prepared = 0
        skipped = 0
        for request in requests:
            try:
                route = self.registry.plan_for(benchmark=request.benchmark,
                                               program=request.program)
                shape = tuple(request.inputs[0].shape) if request.inputs else ()
                program, variant, _source = route.program_for(shape)
                program_key = f"{route.digest}:{variant}"
                wire = self._wires.get(program_key)
                if wire is None:
                    wire = program_to_dict(program)
                    self._wires[program_key] = wire
                size_env = request.size_env or None
            except Exception:  # noqa: BLE001 - prewarm is best-effort
                skipped += 1
                continue
            for shard in self.executor.handles:
                for capacity in [1] + capacities:
                    try:
                        shard.execute(program_key, wire, size_env,
                                      [request.inputs] * capacity)
                        prepared += 1
                    except ShardError:
                        skipped += 1
        self.plans_prewarmed += prepared
        return {"prewarmed": prepared, "skipped": skipped}

    # -- the request path ------------------------------------------------------
    async def submit(self, request: ExecutionRequest) -> ExecutionResponse:
        """Serve one request (awaits its micro-batch's execution).

        Admission order: resolve the routing plan, then apply admission
        control — an already-expired deadline is shed, a full queue or a
        saturated digest is rejected with a ``retry_after_ms`` hint (a
        high-priority arrival instead evicts one queued lower-priority
        request) — and only then does the request join its priority lane.
        """
        if self._queues is None:
            raise ServiceError("service is not started")
        started = time.perf_counter()
        try:
            pending = self._admit(request)
        except Exception as error:  # bad request: respond in-band
            self.request_errors += 1
            _REQUEST_ERRORS_TOTAL.inc()
            return ExecutionResponse(
                result=None, benchmark=request.benchmark, digest="",
                variant="", plan_source="", batch_size=0, batched=False,
                latency_s=time.perf_counter() - started,
                error=f"{type(error).__name__}: {error}",
                code=BAD_REQUEST,
            )
        pending.admit_ms = (time.perf_counter() - started) * 1e3
        rejection = self._admission_control(pending)
        if rejection is not None:
            return rejection
        self._track_inflight(pending)
        self._queues.put(pending)
        return await pending.future

    def _admit(self, request: ExecutionRequest) -> _Pending:
        plan = self.registry.plan_for(benchmark=request.benchmark,
                                      program=request.program)
        shape = tuple(request.inputs[0].shape) if request.inputs else ()
        program, variant, source = plan.program_for(shape)
        signature = tuple(
            (grid.shape, str(grid.dtype)) for grid in request.inputs
        )
        key = (plan.digest, signature, tuple(sorted(request.size_env.items())),
               request.steps)
        if (
            self.auto_tune
            and plan.tuned is None
            and plan.benchmark is not None
            and plan.digest not in self._tuning_digests
        ):
            self._start_background_tune(plan.digest, plan.benchmark)
        loop = asyncio.get_running_loop()
        pending = _Pending(
            request=request, program=program, variant=variant,
            plan_source=source, digest=plan.digest, benchmark=plan.benchmark,
            key=key, future=loop.create_future(), priority=request.priority,
        )
        if request.deadline_ms is not None:
            pending.expires_at = pending.enqueued_at + request.deadline_ms / 1e3
        return pending

    # -- admission control -----------------------------------------------------
    def _admission_control(
        self, pending: _Pending
    ) -> Optional[ExecutionResponse]:
        """Shed/reject before queueing; ``None`` admits the request."""
        if self._expired(pending):
            # A dead-on-arrival deadline can never be served; don't let it
            # occupy a queue slot at all.
            self._shed(pending)
            return pending.future.result()
        if (
            self.max_inflight_per_digest is not None
            and self._digest_inflight.get(pending.digest, 0)
            >= self.max_inflight_per_digest
        ):
            self._reject(pending, "digest_limit")
            return pending.future.result()
        if (
            self.max_queue_depth is not None
            and self._queues.qsize() >= self.max_queue_depth
        ):
            victim = self._queues.evict_below(pending.priority)
            if victim is None:
                self._reject(pending, "queue_full")
                return pending.future.result()
            # Backpressure with priority: the queued lower-class request is
            # pushed back (it can retry) so the higher-class arrival gets
            # the slot.  High work is therefore never the eviction victim
            # while any lower-class work remains queued.
            self._reject(victim, "evicted")
        return None

    def _expired(self, pending: _Pending) -> bool:
        return (pending.expires_at is not None
                and time.perf_counter() >= pending.expires_at)

    def _retry_after_ms(self) -> float:
        """A backoff hint scaled by how far behind the batcher is."""
        depth = self._queues.qsize() if self._queues is not None else 0
        backlog_batches = 1 + depth / max(1, self.max_batch)
        return max(1.0, self.batch_window * 1e3 * backlog_batches)

    def _shed(self, pending: _Pending, reason: Optional[str] = None) -> None:
        """Resolve one request with the structured DeadlineExceeded form."""
        if pending.future.done():
            return
        now = time.perf_counter()
        self.sheds[pending.priority] = self.sheds.get(pending.priority, 0) + 1
        _SHEDS_TOTAL.inc(label=pending.priority)
        waited_ms = (now - pending.enqueued_at) * 1e3
        deadline_ms = pending.request.deadline_ms
        reason = reason or (
            f"deadline of {deadline_ms:.0f} ms exceeded after "
            f"{waited_ms:.1f} ms in queue" if deadline_ms is not None
            else "shed before execution"
        )
        self._record_trace(pending, 0, {}, now, now, error=reason)
        pending.future.set_result(
            ExecutionResponse(
                result=None, benchmark=pending.benchmark,
                digest=pending.digest, variant=pending.variant,
                plan_source=pending.plan_source, batch_size=0, batched=False,
                latency_s=now - pending.enqueued_at, error=reason,
                code=DEADLINE_EXCEEDED,
            )
        )

    def _reject(self, pending: _Pending, reason: str) -> None:
        """Resolve one request with 429-style backpressure (+ retry hint)."""
        if pending.future.done():
            return
        now = time.perf_counter()
        self.rejects[reason] = self.rejects.get(reason, 0) + 1
        _REJECTS_TOTAL.inc(label=reason)
        retry_after = self._retry_after_ms()
        detail = {
            "queue_full": f"queue depth cap {self.max_queue_depth} reached",
            "digest_limit": (
                f"per-digest admission limit {self.max_inflight_per_digest} "
                f"reached for {pending.digest[:12]}"
            ),
            "evicted": (
                f"evicted from a full queue (depth cap {self.max_queue_depth})"
                " by higher-priority work"
            ),
        }.get(reason, reason)
        self._record_trace(pending, 0, {}, now, now, error=detail)
        pending.future.set_result(
            ExecutionResponse(
                result=None, benchmark=pending.benchmark,
                digest=pending.digest, variant=pending.variant,
                plan_source=pending.plan_source, batch_size=0, batched=False,
                latency_s=now - pending.enqueued_at, error=detail,
                code=ADMISSION_REJECTED, retry_after_ms=retry_after,
            )
        )

    def _track_inflight(self, pending: _Pending) -> None:
        self._digest_inflight[pending.digest] = (
            self._digest_inflight.get(pending.digest, 0) + 1
        )
        digest = pending.digest
        pending.future.add_done_callback(
            lambda _future: self._release_inflight(digest)
        )

    def _release_inflight(self, digest: str) -> None:
        count = self._digest_inflight.get(digest, 0) - 1
        if count <= 0:
            self._digest_inflight.pop(digest, None)
        else:
            self._digest_inflight[digest] = count

    def shed_queued(self, reason: str = "drain deadline reached") -> int:
        """Shed every still-queued request with DeadlineExceeded (drain)."""
        if self._queues is None:
            return 0
        items = self._queues.drain()
        for item in items:
            self._shed(item, reason=reason)
        return len(items)

    # -- the batcher -----------------------------------------------------------
    async def _batch_loop(self) -> None:
        assert self._queues is not None
        while True:
            pending: List[_Pending] = []
            try:
                pending.append(await self._queues.get())
                loop = asyncio.get_running_loop()
                deadline = loop.time() + self.batch_window
                while len(pending) < self.max_batch:
                    if not self._queues.empty():
                        pending.append(self._queues.get_nowait())
                        continue
                    timeout = deadline - loop.time()
                    if timeout <= 0:
                        break
                    try:
                        pending.append(
                            await asyncio.wait_for(self._queues.get(), timeout)
                        )
                    except asyncio.TimeoutError:
                        break
                # Shed work whose deadline expired while queued — an expired
                # request never occupies a batch slot, let alone executes.
                live = []
                for item in pending:
                    if self._expired(item):
                        self._shed(item)
                    else:
                        live.append(item)
                pending = live
                groups: Dict[Tuple, List[_Pending]] = {}
                for item in pending:
                    groups.setdefault(item.key, []).append(item)
                if self.executor is not None:
                    # Sharded: dispatch each group as its own task so this
                    # loop returns to collecting the next micro-batch while
                    # shards sweep — successive groups round-robin onto
                    # different shard processes and overlap in time.
                    for group in groups.values():
                        task = loop.create_task(self._execute_group(group))
                        self._inflight.add(task)
                        task.add_done_callback(self._inflight.discard)
                else:
                    for group in groups.values():
                        await self._execute_group(group)
            except asyncio.CancelledError:
                # A half-collected batch must not strand its callers.
                self._fail_group(pending, "service stopped")
                raise
            except Exception as error:  # noqa: BLE001 - batcher must survive
                # _execute_group reports execution errors in-band; anything
                # reaching here is a bug, but one bad batch must not brick
                # the long-lived serving loop for every later request.
                self._fail_group(pending, f"{type(error).__name__}: {error}")

    async def _execute_group(self, group: List[_Pending]) -> None:
        """One compile, one vectorized sweep, ``len(group)`` responses.

        The numeric sweep runs on an executor thread so the event loop —
        the TCP readers, stats/ping ops, and admission of further requests
        — stays responsive while a batch executes.  Counters and futures
        are only touched back on the loop.
        """
        # Last line of defence: a deadline may expire between batch
        # formation and this dispatch (sharded groups run as tasks).
        expired = [item for item in group if self._expired(item)]
        if expired:
            for item in expired:
                self._shed(item)
            group = [item for item in group if not item.future.done()]
            if not group:
                return
        size = len(group)
        loop = asyncio.get_running_loop()
        formed_at = time.perf_counter()
        try:
            outputs, crosschecked, timings = await loop.run_in_executor(
                None, self._compute_group, group
            )
        except Exception as error:  # noqa: BLE001 - reported in-band per request
            self._breaker_outcome(group[0].digest,
                                  failure=f"{type(error).__name__}: {error}")
            self._fail_group(group, f"{type(error).__name__}: {error}")
            return
        if timings.get("quarantined"):
            pass  # served on the quarantine route: no breaker evidence
        elif timings.get("plan_fallback"):
            self._breaker_outcome(group[0].digest, failure="plan capture")
        elif timings.get("redispatches"):
            self._breaker_outcome(group[0].digest, failure="shard dispatch")
        else:
            self._breaker_outcome(group[0].digest, failure=None)
        executed_at = time.perf_counter()
        self.batches_formed += 1
        _BATCHES_TOTAL.inc()
        _BATCH_SIZE.observe(size)
        self.largest_batch = max(self.largest_batch, size)
        if size > 1:
            self.batched_requests += size
            _BATCHED_REQUESTS_TOTAL.inc(size)
        self.crosschecks_passed += crosschecked
        now = time.perf_counter()
        for item, output in zip(group, outputs):
            if item.future.done():
                # The caller gave up (e.g. wait_for cancelled the submit);
                # its slot in the sweep is discarded, everyone else's stands.
                continue
            if isinstance(output, _DeadlineShed):
                # Expired at a segment boundary mid-trajectory: structured
                # shed, not a result (and not a served request).
                self._shed(item, reason=(
                    f"deadline exceeded mid-trajectory after "
                    f"{output.completed_steps}/{output.steps} steps"))
                continue
            item.future.set_result(
                ExecutionResponse(
                    result=output if item.request.return_result else None,
                    benchmark=item.benchmark,
                    digest=item.digest,
                    variant=item.variant,
                    plan_source=item.plan_source,
                    batch_size=size,
                    batched=size > 1,
                    latency_s=now - item.enqueued_at,
                )
            )
            self.requests_served += 1
            _REQUESTS_TOTAL.inc()
            _REQUEST_LATENCY_SECONDS.observe(
                (now - item.enqueued_at) + item.admit_ms * 1e-3
            )
            self._record_trace(item, size, timings, formed_at, executed_at)

    def _breaker_outcome(self, digest: str,
                         failure: Optional[str]) -> None:
        """Feed one group's fast-path outcome to the digest breaker."""
        before = self.breakers.opens
        if failure is None:
            self.breakers.record_success(digest)
        else:
            self.breakers.record_failure(digest, reason=failure)
        tripped = self.breakers.opens - before
        if tripped:
            _BREAKER_OPENS_TOTAL.inc(tripped)
            log.warning("circuit breaker opened for digest %s (%s)",
                        digest[:12], failure)

    def _record_trace(self, item: _Pending, size: int,
                      timings: Dict[str, object], formed_at: float,
                      executed_at: float,
                      error: Optional[str] = None) -> None:
        """File one request's per-stage breakdown into the trace ring."""
        done = time.perf_counter()
        stages: List[Tuple[str, float]] = [
            ("admit", item.admit_ms),
            ("queue", (formed_at - item.enqueued_at) * 1e3),
        ]
        for stage in ("plan_resolve", "replay", "shard_roundtrip"):
            value = timings.get(f"{stage}_ms")
            if value is not None:
                stages.append((stage, float(value)))  # type: ignore[arg-type]
        stages.append(("respond", (done - executed_at) * 1e3))
        self.tracer.record({
            "benchmark": item.benchmark,
            "digest": item.digest,
            "variant": item.variant,
            "batch_size": size,
            "total_ms": item.admit_ms + (done - item.enqueued_at) * 1e3,
            "stages": stages,
            "shard": timings.get("shard"),
            "replay_chunks_ms": timings.get("replay_chunks_ms"),
            "redispatches": timings.get("redispatches"),
            "quarantined": timings.get("quarantined"),
            "error": error,
        })

    def _compute_group(
        self, group: List[_Pending]
    ) -> Tuple[List, int, Dict[str, object]]:
        """The pure numeric part of a batch (runs on an executor thread).

        Returns ``(outputs, crosschecked, timings)`` — the timings dict
        carries the execute-phase breakdown (``plan_resolve_ms`` /
        ``replay_ms`` locally, ``shard_roundtrip_ms`` + ``shard`` when
        dispatched) the trace ring files per request.
        """
        if not self.breakers.allow(group[0].digest):
            # Quarantined digest: skip plan capture and shard dispatch
            # entirely — the generic unfused local path is the one thing
            # that has not been failing for it.  The breaker's half-open
            # probe (which `allow` admits) is what retries the fast path.
            self.quarantined_requests += len(group)
            _BREAKER_QUARANTINED_TOTAL.inc(len(group))
            outputs, crosschecked, timings = self._compute_group_local(
                group, use_plans=False)
            timings["quarantined"] = True
            return outputs, crosschecked, timings
        if self.executor is not None and group[0].request.steps == 1:
            # Iterative jobs (steps > 1) run locally: the shard wire
            # protocol ships single sweeps, and a T-step job is one long
            # replay loop anyway.
            sharded = self._compute_group_sharded(group)
            if sharded is not None:
                return sharded
            self.shard_fallbacks += 1
            _SHARD_FALLBACKS_TOTAL.inc()
        return self._compute_group_local(group)

    def _compute_group_sharded(
        self, group: List[_Pending]
    ) -> Optional[Tuple[List, int, Dict[str, object]]]:
        """Dispatch one group to a shard process; ``None`` = serve locally.

        The program crosses the pipe once per (digest, variant) per shard as
        a :func:`~repro.core.serialize.program_to_dict` wire dict; request
        grids go through the shard's shared-memory input slabs.  Programs
        the wire format cannot express (e.g. closure-captured constant
        arrays) are remembered in ``_unshardable`` and served in-process.
        """
        head = group[0]
        program_key = f"{head.digest}:{head.variant}"
        if program_key in self._unshardable:
            return None
        wire = self._wires.get(program_key)
        if wire is None:
            try:
                wire = program_to_dict(head.program)
            except SerializationError:
                self._unshardable.add(program_key)
                return None
            self._wires[program_key] = wire
        parts = [item.request.inputs for item in group]
        redispatches = 0
        dispatched = time.perf_counter()
        while True:
            shard = self.executor.pick()
            if shard is None:
                # Whole fleet down: the local path absorbs the group while
                # the supervisor restores capacity.
                return None
            try:
                outputs = shard.execute(program_key, wire,
                                        head.request.size_env or None, parts)
                break
            except ShardUnavailable as error:
                # The reply never arrived, so nothing was delivered for
                # this group — re-executing it on a surviving shard (or
                # locally) is idempotent.  `execute` already marked the
                # shard failed; the supervisor respawns it in the
                # background.
                redispatches += 1
                self.shard_redispatches += 1
                _SHARD_REDISPATCHES_TOTAL.inc()
                log.warning(
                    "redispatching group (digest %s, %d requests): %s",
                    head.digest[:12], len(group), error)
                if redispatches > len(self.executor.handles):
                    return None
        roundtrip = time.perf_counter() - dispatched
        _SHARD_ROUNDTRIP_SECONDS.observe(roundtrip)
        crosschecked = 0
        if self.crosscheck and len(group) > 1:
            crosschecked = self._crosscheck_group(group, outputs)
        timings: Dict[str, object] = {
            "shard_roundtrip_ms": roundtrip * 1e3, "shard": shard.index,
        }
        if redispatches:
            timings["redispatches"] = redispatches
        return (
            [squeeze_result(np.asarray(output, dtype=np.float64))
             for output in outputs],
            crosschecked,
            timings,
        )

    def _iterate_deadlined(self, item: _Pending, steps: int, carry,
                           force_generic: bool):
        """One request's T-step trajectory, shed-aware.

        Without a deadline the whole trajectory runs as one plan loop.
        With one, it runs in ``checkpoint_every``-step segments (the same
        cadence durable jobs checkpoint at), re-checking the deadline at
        every boundary; expiry returns a :class:`_DeadlineShed` marker the
        response loop turns into a structured ``DeadlineExceeded`` shed.
        Segment boundaries re-bind the copied carry state into the same
        pooled plan buffers, so the segmented result is bit-identical to
        the monolithic loop.
        """
        size_env = item.request.size_env or None
        if item.expires_at is None:
            if force_generic:
                return self.backend.iterate_generic(
                    item.program, item.request.inputs, steps,
                    carry=carry, size_env=size_env)
            return self.backend.iterate(item.program, item.request.inputs,
                                        steps, carry=carry, size_env=size_env)
        state = item.request.inputs
        out = None
        done = 0
        while done < steps:
            if time.perf_counter() >= item.expires_at:
                return _DeadlineShed(completed_steps=done, steps=steps)
            segment = min(self.checkpoint_every, steps - done)
            if force_generic:
                out, state = iterate_state_generic(
                    self.backend, item.program, state, segment,
                    carry=carry, size_env=size_env)
            else:
                out, state = self.backend.iterate_state(
                    item.program, state, segment, carry=carry,
                    size_env=size_env)
            done += segment
        return out

    def _carry_spec(self, item: _Pending):
        """The iterate() carry specification for one request's benchmark.

        Program-only requests use the default (output feeds input 0, the
        rest stay static) — the same convention ``plan.iterate`` applies.
        """
        if item.benchmark:
            try:
                from ..apps.suite import get_benchmark

                return get_benchmark(item.benchmark).carry_spec()
            except Exception:  # noqa: BLE001 - unknown key: default carry
                pass
        return None

    def _compute_group_local(
        self, group: List[_Pending], use_plans: Optional[bool] = None
    ) -> Tuple[List, int, Dict[str, object]]:
        """Serve one group in-process.

        ``use_plans=False`` forces the generic unfused path regardless of
        the service configuration — the circuit breaker's quarantine route.
        """
        force_generic = use_plans is not None and not use_plans
        use_plans = self.use_plans if use_plans is None else use_plans
        plan_fallback = False
        head = group[0]
        size_env = head.request.size_env or None
        resolve_started = time.perf_counter()
        replay_started = resolve_started
        if head.request.steps > 1:
            # Iterative jobs: one double-buffered plan replay loop per
            # request (grouped by key so they share the cached plan, but
            # each request's T-step trajectory is its own).  Deadlined
            # requests run in checkpoint-sized segments with the deadline
            # re-checked at each boundary — a request that expires at step
            # k of T stops there instead of burning the remaining T-k
            # steps.  Crosschecked against the generic per-sweep loop when
            # enabled (segmentation is bit-identical to one monolithic
            # iterate, so the check holds either way).
            carry = self._carry_spec(head)
            steps = head.request.steps
            swept = [
                self._iterate_deadlined(item, steps, carry, force_generic)
                for item in group
            ]
            replay_done = time.perf_counter()
            crosschecked = 0
            if self.crosscheck:
                for item, output in zip(group, swept):
                    if isinstance(output, _DeadlineShed):
                        continue
                    generic = self.backend.iterate_generic(
                        item.program, item.request.inputs, steps,
                        carry=carry, size_env=item.request.size_env or None)
                    if not np.array_equal(np.asarray(output), generic):
                        raise ServiceError(
                            f"iterate plan result diverges from the generic "
                            f"loop for digest {item.digest[:12]}"
                        )
                    crosschecked += 1
            return (
                [output if isinstance(output, _DeadlineShed)
                 else squeeze_result(np.asarray(output, dtype=np.float64))
                 for output in swept],
                crosschecked,
                {"replay_ms": (replay_done - resolve_started) * 1e3},
            )
        if len(group) == 1:
            if use_plans:
                # The run_plan split, inlined so the trace can separate
                # plan lookup/capture from the replay itself (identical
                # semantics: CompileError at either stage falls back to
                # the generic compiled path).
                plan = None
                try:
                    plan = self.backend.plan(head.program,
                                             head.request.inputs, size_env)
                except CompileError:
                    plan_fallback = True
                replay_started = time.perf_counter()
                if plan is not None:
                    try:
                        swept = [plan.run(head.request.inputs)]
                    except CompileError:
                        plan_fallback = True
                        swept = [self.backend.run(head.program,
                                                  head.request.inputs,
                                                  size_env)]
                else:
                    swept = [self.backend.run(head.program,
                                              head.request.inputs, size_env)]
            else:
                swept = [self.backend.run(head.program, head.request.inputs,
                                          size_env)]
        elif use_plans:
            # One cached batched plan per (program, shapes, capacity):
            # request grids are copied straight into its pooled stacked
            # buffer set — no np.stack allocation, one tape replay.  Group
            # sizes are rounded up to the next power of two (padding with
            # repeats of the head request, whose slots are discarded), so
            # variable load keys O(log max_batch) resident plans per
            # program instead of one per distinct batch size.
            capacity = 1
            while capacity < len(group):
                capacity *= 2
            signature = [
                ((capacity,) + tuple(grid.shape), str(grid.dtype))
                for grid in head.request.inputs
            ]
            parts = [item.request.inputs for item in group]
            parts += [head.request.inputs] * (capacity - len(group))

            def stacked_fallback() -> np.ndarray:
                stacked = [
                    np.stack([item[i] for item in parts])
                    for i in range(len(head.request.inputs))
                ]
                return self.backend.run_batched(head.program, stacked,
                                                size_env)

            plan = None
            try:
                plan = self.backend.plan(head.program, signature, size_env,
                                         batched=True)
            except CompileError:
                plan_fallback = True
            replay_started = time.perf_counter()
            if plan is not None:
                try:
                    batch = plan.run_batched_parts(parts)
                except CompileError:
                    plan_fallback = True
                    batch = stacked_fallback()
            else:
                batch = stacked_fallback()
            swept = [batch[index] for index in range(len(group))]
        else:
            stacked = [
                np.stack([item.request.inputs[i] for item in group])
                for i in range(len(head.request.inputs))
            ]
            batch = self.backend.run_batched(
                head.program, stacked, size_env
            )
            swept = [batch[index] for index in range(len(group))]
        replay_done = time.perf_counter()
        timings: Dict[str, object] = {
            "plan_resolve_ms": (replay_started - resolve_started) * 1e3,
            "replay_ms": (replay_done - replay_started) * 1e3,
        }
        if plan_fallback:
            timings["plan_fallback"] = True
        # If the sweep's fused regions replayed in parallel chunks, copy
        # that run's per-chunk wall times into the trace (the pool stamps
        # last_run_at only on timed runs — telemetry enabled).
        pool = replay_pool()
        if pool.last_run_at >= replay_started and pool.last_chunk_seconds:
            timings["replay_chunks_ms"] = [
                seconds * 1e3 for seconds in pool.last_chunk_seconds
            ]
        crosschecked = 0
        if self.crosscheck and len(group) > 1:
            crosschecked = self._crosscheck_group(group, swept)
        return (
            [squeeze_result(np.asarray(output, dtype=np.float64))
             for output in swept],
            crosschecked,
            timings,
        )

    def _crosscheck_group(self, group: List[_Pending], outputs: List) -> int:
        """Require stacked results to be bit-identical to per-request runs."""
        for item, output in zip(group, outputs):
            single = self.backend.run(item.program, item.request.inputs,
                                      item.request.size_env or None)
            if not np.array_equal(np.asarray(output), single):
                raise ServiceError(
                    f"batched result diverges from single-request execution "
                    f"for digest {item.digest[:12]}"
                )
        return len(group)

    def _fail_group(self, group: List[_Pending], reason: str,
                    code: Optional[str] = None) -> None:
        now = time.perf_counter()
        for item in group:
            if not item.future.done():
                self.request_errors += 1
                _REQUEST_ERRORS_TOTAL.inc()
                self._record_trace(item, len(group), {}, now, now,
                                   error=reason)
                item.future.set_result(
                    ExecutionResponse(
                        result=None, benchmark=item.benchmark,
                        digest=item.digest, variant=item.variant,
                        plan_source=item.plan_source, batch_size=len(group),
                        batched=len(group) > 1,
                        latency_s=now - item.enqueued_at, error=reason,
                        code=code,
                    )
                )

    # -- background tuning -----------------------------------------------------
    def _start_background_tune(self, digest: str, benchmark: str) -> None:
        store = self.registry.store
        store_path = getattr(store, "path", None) if store is not None else None
        if store_path is None or store_path == ":memory:":
            return  # background tuning needs a persistent, shareable store
        self._tuning_digests.add(digest)
        loop = asyncio.get_running_loop()

        def tune() -> None:
            # Fresh store connection: SQLite connections are cheap and this
            # runs on an executor thread while the loop keeps serving.
            from ..engine import SearchEngine

            with SearchEngine(store=store_path, workers=1) as engine:
                engine.run(benchmark, budget=self.tune_budget,
                           device=self.device)

        def done(task: "asyncio.Future") -> None:
            if not task.cancelled() and task.exception() is None:
                self.background_tunes += 1
                self.registry.refresh(digest)

        task = loop.run_in_executor(None, tune)
        task.add_done_callback(done)
        self._tune_tasks.append(task)

    # -- stats -----------------------------------------------------------------
    def service_section(self) -> Dict[str, object]:
        return {
            "requests_served": self.requests_served,
            "batches_formed": self.batches_formed,
            "batched_requests": self.batched_requests,
            "largest_batch": self.largest_batch,
            "crosschecks_passed": self.crosschecks_passed,
            "background_tunes": self.background_tunes,
            "request_errors": self.request_errors,
            "plans_prewarmed": self.plans_prewarmed,
            "shard_fallbacks": self.shard_fallbacks,
            "shard_redispatches": self.shard_redispatches,
            "shard_restarts": (self.supervisor.restarts
                               if self.supervisor is not None else 0),
            "supervisor": (self.supervisor.stats()
                           if self.supervisor is not None else None),
            "breakers": {
                "quarantined_requests": self.quarantined_requests,
                **self.breakers.stats(),
            },
            "admission": {
                "sheds": dict(self.sheds),
                "rejects": dict(self.rejects),
                "queue_depth": {
                    priority: (self._queues.depth(priority)
                               if self._queues is not None else 0)
                    for priority in PRIORITIES
                },
                "inflight_digests": len(self._digest_inflight),
                "max_queue_depth": self.max_queue_depth,
                "max_inflight_per_digest": self.max_inflight_per_digest,
            },
            "registry": self.registry.stats(),
            "jobs": self.jobs.stats(),
            "plans": self.backend.plans.stats() if self.use_plans else None,
            "shards": (
                shards_section(self.executor.stats())
                if self.executor is not None else None
            ),
        }

    def stats(self) -> Dict[str, object]:
        """The combined ``/metrics``-style report (see :mod:`.metrics`)."""
        return stats_report(
            cache=self.cache,
            store=self.registry.store,
            service=self.service_section(),
        )


class ServiceClient:
    """Blocking, thread-safe client running a service on a background loop.

    ``execute_many`` submits all requests concurrently — this is what lets
    the batcher stack them into micro-batches — and returns responses in
    request order.
    """

    def __init__(self, service: StencilService) -> None:
        self.service = service
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-service", daemon=True
        )
        self._thread.start()
        self._run(service.start())

    def _run(self, coroutine):
        return asyncio.run_coroutine_threadsafe(coroutine, self._loop).result()

    def execute(self, request: ExecutionRequest,
                raise_on_error: bool = True) -> ExecutionResponse:
        return self.execute_many([request], raise_on_error=raise_on_error)[0]

    def execute_many(self, requests: Sequence[ExecutionRequest],
                     raise_on_error: bool = True) -> List[ExecutionResponse]:
        async def submit_all() -> List[ExecutionResponse]:
            return list(
                await asyncio.gather(
                    *[self.service.submit(request) for request in requests]
                )
            )

        responses = self._run(submit_all())
        if raise_on_error:
            for response in responses:
                if not response.ok:
                    raise ServiceError(response.error)
        return responses

    def stats(self) -> Dict[str, object]:
        return self.service.stats()

    def close(self) -> None:
        self._run(self.service.stop())
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5)
        self._loop.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# The TCP endpoint (JSON lines)
# ---------------------------------------------------------------------------

async def _handle_message(service: StencilService,
                          message: Dict[str, object]) -> Dict[str, object]:
    op = str(message.get("op", "execute"))
    if op == "ping":
        return {"ok": True, "pong": True}
    if op == "stats":
        return {"ok": True, "stats": service.stats()}
    if op == "trace":
        limit = message.get("limit")
        return {
            "ok": True,
            "traces": service.tracer.snapshot(
                slow_only=bool(message.get("slow")),
                limit=int(limit) if limit is not None else None,
            ),
            "ring": service.tracer.stats(),
        }
    if op == "execute":
        # Payload conversion (JSON grids ↔ ndarrays, input generation) can
        # be arbitrarily large; keep it off the event loop so one fat
        # request does not stall the batch window or other connections.
        loop = asyncio.get_running_loop()
        request = await loop.run_in_executor(
            None, ExecutionRequest.from_wire, message
        )
        response = await service.submit(request)
        return await loop.run_in_executor(None, response.to_wire)
    if op in ("job_submit", "job_status", "job_result", "job_cancel",
              "job_list"):
        return await _handle_job_op(service, op, message)
    return {"ok": False, "error": f"unknown op {op!r}"}


async def _handle_job_op(service: StencilService, op: str,
                         message: Dict[str, object]) -> Dict[str, object]:
    """Durable-job ops, all answered off the event loop (lock + disk I/O).

    ``job_submit`` reuses the execute wire form plus ``job_key`` (the
    idempotency token) and an optional per-job ``checkpoint_every``;
    the rest take a ``job_id``.  Errors come back in-band with structured
    codes (``NotFound`` for an unknown/aged-out id).
    """
    loop = asyncio.get_running_loop()
    try:
        if op == "job_submit":
            request = await loop.run_in_executor(
                None, ExecutionRequest.from_wire, message
            )
            checkpoint_every = message.get("checkpoint_every")
            job = await loop.run_in_executor(
                None, lambda: service.jobs.submit(
                    request,
                    job_key=(str(message["job_key"])
                             if message.get("job_key") else None),
                    checkpoint_every=(int(checkpoint_every)
                                      if checkpoint_every else None),
                )
            )
            return {"ok": True, "job": job}
        job_id = str(message.get("job_id") or "")
        if op == "job_status":
            job = await loop.run_in_executor(None, service.jobs.status,
                                             job_id)
            return {"ok": True, "job": job}
        if op == "job_cancel":
            job = await loop.run_in_executor(None, service.jobs.cancel,
                                             job_id)
            return {"ok": True, "job": job}
        if op == "job_list":
            jobs = await loop.run_in_executor(None, service.jobs.list_jobs)
            return {"ok": True, "jobs": jobs}
        # job_result: descriptor + the final grid (JSON-listed on TCP).
        try:
            job, result = await loop.run_in_executor(None,
                                                     service.jobs.result,
                                                     job_id)
        except JobNotFound:
            raise
        except JobError as error:
            # Not completed (yet): a conflict with the job's state, the
            # same code the HTTP surface answers 409 with.
            return {"ok": False, "code": CANCELLED, "error": str(error)}
        return {
            "ok": True, "job": job,
            "result": await loop.run_in_executor(
                None, np.asarray(result).tolist),
        }
    except JobNotFound as error:
        return {"ok": False, "code": NOT_FOUND, "error": str(error)}
    except JobError as error:
        return {"ok": False, "code": BAD_REQUEST, "error": str(error)}


class ServedGate:
    """Counts answered requests across endpoints; resolves at ``max``.

    One gate is shared by the TCP and HTTP endpoints so ``--max-requests``
    bounds *total* traffic regardless of which transport carried it.
    ``None`` max never resolves (serve forever).
    """

    def __init__(self, max_requests: Optional[int] = None) -> None:
        self.max_requests = max_requests
        self.count = 0
        self.done: "asyncio.Future[None]" = (
            asyncio.get_running_loop().create_future()
        )

    def mark(self) -> None:
        self.count += 1
        if (self.max_requests is not None
                and self.count >= self.max_requests
                and not self.done.done()):
            self.done.set_result(None)

    def resolve(self) -> None:
        """Resolve the gate early (graceful-shutdown signal path)."""
        if not self.done.done():
            self.done.set_result(None)


async def serve_tcp(
    service: StencilService,
    host: str = "127.0.0.1",
    port: int = 7457,
    max_requests: Optional[int] = None,
    auth_key: Optional[str] = None,
    max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
    gate: Optional[ServedGate] = None,
) -> "asyncio.AbstractServer":
    """Expose a started service as a JSON-lines TCP endpoint.

    One JSON object per line in, one per line out; each carries the
    client's ``id`` back so requests on one connection can be pipelined
    (responses may arrive out of submission order).  ``max_requests``
    closes the server after that many ``execute`` ops — used by smoke
    tests to bound a ``repro serve`` process.

    ``auth_key`` (when set) requires every non-ping message to carry a
    matching ``"auth"`` field; ``max_request_bytes`` bounds one request
    line — an oversized line gets an in-band ``RequestTooLarge`` error and
    the connection closes (a JSON-lines stream cannot resync mid-line).
    """
    if gate is None:
        gate = ServedGate(max_requests)
    connections: set = set()

    async def handle(reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        write_lock = asyncio.Lock()
        # Only in-flight answer tasks are retained; completed ones discard
        # themselves so a long-lived pipelined connection stays O(in-flight).
        tasks: set = set()

        async def answer(message: Dict[str, object]) -> None:
            if (auth_key is not None
                    and str(message.get("op", "execute")) != "ping"
                    and not hmac.compare_digest(
                        str(message.get("auth") or ""), auth_key)):
                _REJECTS_TOTAL.inc(label="unauthorized")
                reply: Dict[str, object] = {
                    "ok": False, "code": UNAUTHORIZED,
                    "error": "missing or invalid auth key",
                }
            else:
                try:
                    reply = await _handle_message(service, message)
                except Exception as error:  # noqa: BLE001 - wire-level error report
                    reply = {"ok": False,
                             "error": f"{type(error).__name__}: {error}"}
            if "id" in message:
                reply["id"] = message["id"]
            async with write_lock:
                writer.write((json.dumps(reply) + "\n").encode("utf-8"))
                await writer.drain()
            if str(message.get("op", "execute")) == "execute":
                gate.mark()

        connection = asyncio.current_task()
        if connection is not None:
            connections.add(connection)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    # One line exceeded max_request_bytes.  Report in-band
                    # and close: the rest of the oversized line is still in
                    # the socket, so the stream cannot be resynchronised.
                    _REJECTS_TOTAL.inc(label="too_large")
                    async with write_lock:
                        writer.write((json.dumps({
                            "ok": False, "code": REQUEST_TOO_LARGE,
                            "error": ("request line exceeds "
                                      f"{max_request_bytes} bytes"),
                        }) + "\n").encode("utf-8"))
                        await writer.drain()
                    break
                if not line:
                    break
                text = line.decode("utf-8").strip()
                if not text:
                    continue
                try:
                    message = json.loads(text)
                except json.JSONDecodeError as error:
                    message = {"op": "_invalid", "error": str(error)}
                if message.get("op") == "_invalid":
                    async with write_lock:
                        writer.write(
                            (json.dumps({"ok": False,
                                         "error": "invalid JSON"}) + "\n")
                            .encode("utf-8")
                        )
                        await writer.drain()
                    continue
                task = asyncio.ensure_future(answer(message))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            if connection is not None:
                connections.discard(connection)

    server = await asyncio.start_server(handle, host, port,
                                        limit=max_request_bytes)
    server.served_done = gate.done  # type: ignore[attr-defined]
    server.connections = connections  # type: ignore[attr-defined]
    return server


def run_server(
    host: str = "127.0.0.1",
    port: int = 7457,
    max_requests: Optional[int] = None,
    ready_event: Optional[threading.Event] = None,
    prewarm: Optional[Sequence[ExecutionRequest]] = None,
    prewarm_batch: Sequence[int] = (),
    metrics_port: Optional[int] = None,
    http_port: Optional[int] = None,
    auth_key: Optional[str] = None,
    drain_timeout: float = 10.0,
    max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
    **service_kwargs,
) -> Dict[str, object]:
    """Start a service + TCP endpoint and serve until done (blocking).

    Runs until ``max_requests`` execute ops were served (when given) or the
    loop is interrupted.  Returns the final stats report.  ``ready_event``
    is set once the socket is listening — used by in-process smoke tests.
    ``prewarm`` requests have their plans captured *before* the endpoint
    starts accepting connections (``prewarm_batch`` capacities warm the
    batched plans too), so prewarmed traffic never pays a plan build.
    ``metrics_port`` additionally binds the telemetry HTTP sidecar
    (``/metrics`` + ``/healthz`` + ``/trace``) on the same host;
    ``http_port`` binds the ``/v1/execute``·``/v1/iterate`` HTTP endpoint
    sharing the same batcher.  ``auth_key`` guards both transports.
    ``drain_timeout`` bounds the shutdown drain; requests still queued
    when it expires are shed with ``DeadlineExceeded`` responses instead
    of the connection being dropped mid-flight.
    """
    stats: Dict[str, object] = {}

    async def main() -> None:
        from ..telemetry.httpd import TelemetryHTTP
        from .http import serve_http

        service = StencilService(**service_kwargs)
        async with service:
            telemetry_http = None
            if metrics_port is not None:
                telemetry_http = await TelemetryHTTP(service).start(
                    host, metrics_port
                )
            if prewarm:
                warmed = await asyncio.get_running_loop().run_in_executor(
                    None, lambda: service.prewarm(
                        list(prewarm), batch_capacities=prewarm_batch
                    )
                )
                log.info("prewarmed %d plans (%d skipped)",
                         warmed["prewarmed"], warmed["skipped"])
            # One gate across both endpoints: --max-requests bounds total
            # traffic no matter which transport carried it.
            gate = ServedGate(max_requests)
            http_server = None
            if http_port is not None:
                http_server = await serve_http(
                    service, host, http_port, auth_key=auth_key,
                    max_request_bytes=max_request_bytes,
                    on_served=gate.mark,
                )
                log.info("http endpoint on %s:%d", host, http_port)
            server = await serve_tcp(service, host, port,
                                     auth_key=auth_key,
                                     max_request_bytes=max_request_bytes,
                                     gate=gate)
            async with server:
                if ready_event is not None:
                    ready_event.set()
                log.info("serving on %s:%d", host, port)
                # SIGTERM/SIGINT resolve the gate instead of killing the
                # process mid-batch: the same bounded drain that follows
                # --max-requests runs, so in-flight work is answered and
                # stragglers are shed in-band.  Handler installation fails
                # off the main thread (in-process smoke tests) — fine, the
                # gate then only resolves via mark().
                loop = asyncio.get_running_loop()

                def request_drain(signame: str) -> None:
                    log.info("received %s; draining and shutting down",
                             signame)
                    gate.resolve()

                installed: List[int] = []
                for signame in ("SIGTERM", "SIGINT"):
                    signum = getattr(signal, signame, None)
                    if signum is None:
                        continue
                    try:
                        loop.add_signal_handler(
                            int(signum), request_drain, signame)
                        installed.append(int(signum))
                    except (NotImplementedError, RuntimeError, ValueError):
                        pass
                try:
                    # With --max-requests the gate resolves at the quota;
                    # without it, only a shutdown signal resolves it
                    # (serve forever).
                    await server.served_done  # type: ignore[attr-defined]
                finally:
                    for signum in installed:
                        loop.remove_signal_handler(signum)
                # Drain: clients may still pipeline trailing non-execute
                # ops (e.g. the load generator's final stats fetch), so
                # wait — bounded — for open connections to finish before
                # the listening socket and the service are torn down.
                loop_time = loop.time
                drain_deadline = loop_time() + max(0.0, drain_timeout)
                while (
                    server.connections  # type: ignore[attr-defined]
                    and loop_time() < drain_deadline
                ):
                    await asyncio.sleep(0.05)
                if server.connections:  # type: ignore[attr-defined]
                    # Past the drain deadline: answer what is still
                    # queued with structured sheds so connected clients
                    # see DeadlineExceeded, not a dropped socket, then
                    # give the writes a short grace window to flush.
                    shed = service.shed_queued(
                        "shutdown drain deadline reached"
                    )
                    if shed:
                        log.info("drain deadline: shed %d queued "
                                 "requests", shed)
                    grace_deadline = loop_time() + 1.0
                    while (
                        server.connections  # type: ignore[attr-defined]
                        and loop_time() < grace_deadline
                    ):
                        await asyncio.sleep(0.05)
            if http_server is not None:
                http_server.close()
                await http_server.wait_closed()
            if telemetry_http is not None:
                await telemetry_http.stop()
            stats.update(service.stats())

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    return stats


__all__ = [
    "ServiceClient",
    "StencilService",
    "run_server",
    "serve_tcp",
]
