"""Sharded batch execution: pre-forked worker processes behind the batcher.

One :class:`~repro.service.server.StencilService` event loop keeps doing
what it always did — accept requests, collect micro-batches, group them by
routing key — but with ``shards=N`` the *numeric* work of each group is
dispatched round-robin to one of N long-lived worker processes instead of
running on the parent's executor thread.  A multi-core machine then runs N
stacked sweeps concurrently while the asyncio loop stays free for
admission and I/O.

The request path stays zero-copy in the sense that matters: request grids
are written once, straight into a per-(signature, capacity)
``multiprocessing.shared_memory`` slab the shard maps into its address
space — no pickling of arrays, no sockets, no per-request allocation of
wire buffers.  Each shard writes its stacked result into a shared output
slab the parent maps back.  Only tiny control messages (slab names, the
routing digest, batch geometry) cross the pipe; programs cross **once**
per (digest, variant) per shard, as :func:`~repro.core.serialize.program_to_dict`
wire dicts, and are compiled into the shard's own caches — so in sharded
mode the expected compilation count for one hot digest is one *per shard
that served it*, not one per process tree.

Shards are deliberately plain: each one owns a private
:class:`~repro.backend.base.NumpyBackend` (compilation cache + plan cache
+ buffer pools) and replays exactly the plan/batched-plan logic of the
in-process service, so a sharded service is bit-identical to an unsharded
one.  Failure handling is layered: a round-trip that breaks (``EOFError``,
watchdog timeout) raises :class:`ShardUnavailable` and marks the handle
failed so :meth:`ShardedExecutor.pick` skips it; the service *redispatches*
the group to a surviving shard (safe — the reply never arrived, so nothing
was delivered twice) and the :class:`~repro.service.supervisor.ShardSupervisor`
respawns the dead process in the background (:meth:`ShardHandle.respawn`)
and re-warms its program cache before it rejoins the rotation.  An
*in-band* error reply (the shard is alive but the program failed) stays a
plain :class:`ShardError` and is **not** redispatched — a deterministic
failure would fail everywhere.

Start method is ``spawn``: the parent runs a threaded asyncio loop, and
forking a threaded process inherits locks in undefined states.  Spawned
children import :mod:`repro` fresh, which is why shard start-up is
visible (~1 s per shard) and why ``serve --shards`` pre-forks before the
socket starts listening.
"""

from __future__ import annotations

import itertools
import logging
import multiprocessing as mp
import os
import threading
import time
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import faults as _faults
from .requests import ServiceError

log = logging.getLogger("repro.service.shards")


class ShardError(ServiceError):
    """A shard process failed (or died) while executing a group."""


class ShardUnavailable(ShardError):
    """The shard did not answer (died, or tripped the watchdog timeout).

    Distinct from an in-band :class:`ShardError` reply: the group's reply
    never arrived, so the service may safely redispatch it elsewhere.
    """


def _create_slab(shape, dtype=np.float64):
    size = max(1, int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize)
    shm = shared_memory.SharedMemory(create=True, size=size)
    array = np.ndarray(tuple(shape), dtype=dtype, buffer=shm.buf)
    return shm, array


def _attach_slab(name: str, shape, dtype):
    # On Python < 3.13 attaching re-registers the segment with the resource
    # tracker; shard processes are spawned from the parent, so both sides
    # share ONE tracker process and the re-registration is a harmless
    # set-add — the creator's eventual unlink() balances it.  (Do not add
    # the classic `resource_tracker.unregister` workaround here: with a
    # shared tracker it *removes* the creator's registration and unlink()
    # then trips a KeyError inside the tracker.)
    shm = shared_memory.SharedMemory(name=name)
    array = np.ndarray(tuple(shape), dtype=np.dtype(dtype), buffer=shm.buf)
    return shm, array


# ---------------------------------------------------------------------------
# The shard process (child side)
# ---------------------------------------------------------------------------

def _shard_main(index: int, conn, use_plans: bool) -> None:
    """One shard's serve loop: recv control message, sweep, reply.

    Runs in a spawned child process.  Owns a private backend (compilation
    cache, plan cache, buffer pools) plus caches of deserialized programs
    (by the parent's ``(digest, variant)`` key), attached input slabs (by
    name) and created output slabs (by geometry).
    """
    from ..backend.base import NumpyBackend
    from ..backend.cache import CompilationCache
    from ..backend.numpy_backend import CompileError
    from ..core.serialize import program_from_dict

    backend = NumpyBackend(cache=CompilationCache(), fallback=False)
    programs: Dict[str, object] = {}
    attached: Dict[str, tuple] = {}    # slab name -> (shm, array)
    outputs: Dict[tuple, tuple] = {}   # (shape, dtype) -> (shm, array)
    counters = {"requests": 0, "groups": 0, "single": 0, "batched": 0}

    def input_array(spec: Dict) -> np.ndarray:
        entry = attached.get(spec["name"])
        if entry is None:
            entry = _attach_slab(spec["name"], spec["shape"], spec["dtype"])
            attached[spec["name"]] = entry
        return entry[1]

    def output_slab(shape, dtype) -> tuple:
        key = (tuple(shape), str(dtype))
        entry = outputs.get(key)
        if entry is None:
            shm, array = _create_slab(shape, dtype)
            entry = outputs[key] = (shm, array)
        return entry

    def execute(message: Dict) -> Dict:
        key = message["digest"]
        if "program" in message:
            programs[key] = program_from_dict(message["program"])
        program = programs.get(key)
        if program is None:
            raise ShardError(f"shard {index} has no program for {key!r}")
        size_env = message["size_env"] or None
        n = int(message["n"])
        capacity = int(message["capacity"])
        slabs = [input_array(spec) for spec in message["inputs"]]
        counters["groups"] += 1
        counters["requests"] += n
        if n == 1:
            item = [slab[0] for slab in slabs]
            if use_plans:
                result = backend.run_plan(program, item, size_env)
            else:
                result = backend.run(program, item, size_env)
            batch = np.asarray(result, dtype=np.float64)[None]
            counters["single"] += 1
        else:
            # Mirror the in-process service: one cached batched plan per
            # (program, shapes, capacity), request rows copied into its
            # pooled stacked buffers; generic run_batched as the fallback
            # for programs a plan cannot capture.
            parts = [[slab[row] for slab in slabs] for row in range(capacity)]
            batch = None
            if use_plans:
                signature = [
                    (tuple(slab.shape), str(slab.dtype)) for slab in slabs
                ]
                try:
                    plan = backend.plan(program, signature, size_env,
                                        batched=True)
                    batch = plan.run_batched_parts(parts)
                except CompileError:
                    batch = None
            if batch is None:
                stacked = [np.ascontiguousarray(slab) for slab in slabs]
                batch = backend.run_batched(program, stacked, size_env)
            batch = np.asarray(batch, dtype=np.float64)
            counters["batched"] += n
        shm, out = output_slab(batch.shape, batch.dtype)
        np.copyto(out, batch)
        return {
            "ok": True,
            "out": {"name": shm.name, "shape": out.shape,
                    "dtype": str(out.dtype)},
            "n": n,
        }

    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            op = message.get("op")
            if op == "shutdown":
                conn.send({"ok": True})
                break
            if op == "ping":
                conn.send({"ok": True, "pong": True, "shard": index})
                continue
            if op == "stats":
                stats = dict(counters)
                stats["shard"] = index
                stats["compilations"] = backend.cache.stats().get("misses", 0)
                stats["plans"] = backend.plans.stats()
                # This shard's registry snapshot rides along so the parent's
                # /metrics scrape can merge fleet-wide counters/histograms.
                from ..telemetry.registry import get_registry

                stats["telemetry"] = get_registry().snapshot()
                conn.send({"ok": True, "stats": stats})
                continue
            if op == "load":
                # Supervisor rewarm: cache the program so a respawned shard
                # rejoins the rotation warm (no first-group program resend).
                try:
                    programs[message["digest"]] = program_from_dict(
                        message["program"])
                    conn.send({"ok": True, "loaded": message["digest"]})
                except Exception as error:  # noqa: BLE001 - reported in-band
                    conn.send({
                        "ok": False,
                        "error": f"{type(error).__name__}: {error}",
                    })
                continue
            if op != "execute":
                conn.send({"ok": False, "error": f"unknown op {op!r}"})
                continue
            try:
                reply = execute(message)
                if _faults.ARMED:
                    if _faults.should_fail("shard.crash_before_reply"):
                        # Hard crash with the reply computed but unsent: the
                        # parent sees EOF, never a reply — the redispatch
                        # idempotency case.
                        os._exit(17)
                    if _faults.should_fail("shard.hang"):
                        # Wedge without dying: only the parent's watchdog
                        # timeout can notice this.
                        time.sleep(3600)
                conn.send(reply)
            except Exception as error:  # noqa: BLE001 - reported in-band
                conn.send({
                    "ok": False,
                    "error": f"{type(error).__name__}: {error}",
                })
    finally:
        for shm, _array in attached.values():
            shm.close()
        for shm, _array in outputs.values():
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        conn.close()


# ---------------------------------------------------------------------------
# Parent-side handles
# ---------------------------------------------------------------------------

class ShardHandle:
    """Parent-side proxy for one shard process.

    Owns the control pipe, the input slabs (created here, mapped by the
    shard) and attachments to the shard's output slabs.  ``execute`` is
    blocking and internally locked — the service calls it from executor
    threads, one group at a time per shard, while other shards execute
    their own groups concurrently.
    """

    def __init__(self, index: int, ctx, use_plans: bool = True,
                 timeout_s: Optional[float] = None) -> None:
        self.index = index
        self._ctx = ctx
        self._use_plans = use_plans
        self.timeout_s = timeout_s
        self._lock = threading.Lock()
        self._slabs: Dict[tuple, List[tuple]] = {}  # geometry -> [(shm, arr)]
        self._outputs: Dict[str, tuple] = {}        # slab name -> (shm, arr)
        self._sent_programs: set = set()
        self.requests = 0
        self.groups = 0
        self.errors = 0
        self.failed = False
        self.respawns = 0
        self._spawn()

    def _spawn(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        self.process = self._ctx.Process(
            target=_shard_main, args=(self.index, child_conn, self._use_plans),
            name=f"repro-shard-{self.index}", daemon=True,
        )
        self.process.start()
        log.debug("spawned shard %d (pid %s)", self.index, self.process.pid)
        child_conn.close()
        self._conn = parent_conn

    @property
    def available(self) -> bool:
        """Eligible for the round-robin rotation."""
        return not self.failed and self.process.is_alive()

    def mark_failed(self, reason: str) -> None:
        """Take this shard out of rotation (the supervisor respawns it)."""
        if not self.failed:
            self.failed = True
            log.warning("shard %d failed: %s", self.index, reason)

    # -- wire helpers --------------------------------------------------------
    def _roundtrip(self, message: Dict,
                   timeout_s: Optional[float] = None) -> Dict:
        """Send one control message and wait (bounded) for its reply.

        ``timeout_s`` is the per-round-trip watchdog: a shard that neither
        answers nor dies within it is declared failed — the only way a
        wedged (e.g. ``SIGSTOP``-ed, or livelocked) worker is ever noticed.
        """
        try:
            self._conn.send(message)
            if timeout_s is not None and not self._conn.poll(timeout_s):
                self.mark_failed(f"watchdog: no reply within {timeout_s:g}s")
                raise ShardUnavailable(
                    f"shard {self.index} did not reply within {timeout_s:g}s "
                    "(watchdog timeout)")
            return self._conn.recv()
        except (EOFError, BrokenPipeError, OSError) as error:
            self.mark_failed(f"pipe error {type(error).__name__}")
            raise ShardUnavailable(
                f"shard {self.index} is not responding "
                f"({type(error).__name__}); it may have died"
            ) from error

    def _input_slabs(self, head: Sequence[np.ndarray],
                     capacity: int) -> List[tuple]:
        key = (capacity,
               tuple((tuple(grid.shape), str(grid.dtype)) for grid in head))
        slabs = self._slabs.get(key)
        if slabs is None:
            slabs = [
                _create_slab((capacity,) + tuple(grid.shape))
                for grid in head
            ]
            self._slabs[key] = slabs
        return slabs

    def _attach_output(self, spec: Dict) -> np.ndarray:
        entry = self._outputs.get(spec["name"])
        if entry is None:
            entry = _attach_slab(spec["name"], spec["shape"], spec["dtype"])
            self._outputs[spec["name"]] = entry
        return entry[1]

    # -- the group path ------------------------------------------------------
    def execute(self, program_key: str, program_wire: Dict,
                size_env: Optional[Dict],
                parts: Sequence[Sequence[np.ndarray]]) -> List[np.ndarray]:
        """Run one routed group on this shard; returns per-request outputs.

        Rows beyond ``len(parts)`` up to the power-of-two capacity are
        padded with copies of row 0 (their result slots are discarded),
        matching the in-process batcher's capacity policy so the shard's
        plan-cache keys stay O(log max_batch) per program.
        """
        n = len(parts)
        capacity = 1
        while capacity < n:
            capacity *= 2
        with self._lock:
            slabs = self._input_slabs(parts[0], capacity)
            for row, item in enumerate(parts):
                for (_shm, array), grid in zip(slabs, item):
                    np.copyto(array[row], grid)  # casts to float64 once, here
            for row in range(n, capacity):
                for _shm, array in slabs:
                    np.copyto(array[row], array[0])
            message = {
                "op": "execute",
                "digest": program_key,
                "size_env": dict(size_env or {}),
                "n": n,
                "capacity": capacity,
                "inputs": [
                    {"name": shm.name, "shape": array.shape,
                     "dtype": str(array.dtype)}
                    for shm, array in slabs
                ],
            }
            if program_key not in self._sent_programs:
                message["program"] = program_wire
                self._sent_programs.add(program_key)
            try:
                reply = self._roundtrip(message, timeout_s=self.timeout_s)
            except ShardError:
                self.errors += 1
                raise
            if not reply.get("ok"):
                self.errors += 1
                raise ShardError(
                    f"shard {self.index}: {reply.get('error')}"
                )
            out = self._attach_output(reply["out"])
            self.requests += n
            self.groups += 1
            # Copy out of the shared slab before releasing the lock: the
            # next group on this shard reuses the same output geometry.
            return [np.array(out[row]) for row in range(n)]

    # -- supervision ---------------------------------------------------------
    def respawn(self) -> None:
        """Replace a dead/failed shard process with a fresh one.

        Reaps the old process (``SIGKILL`` — works on stopped processes
        too), drops its output-slab attachments (the parent unlinks them;
        a ``SIGKILL``-ed child never ran its cleanup), clears the
        program-sent set (the new process has empty caches), and spawns.
        Input slabs are parent-owned and name-attached lazily, so they
        carry over.  The caller (supervisor) re-warms programs via
        :meth:`load_program` before clearing ``failed``.
        """
        with self._lock:
            if self.process.is_alive():
                self.process.kill()
            self.process.join(timeout=10)
            try:
                self._conn.close()
            except OSError:
                pass
            for shm, _array in self._outputs.values():
                shm.close()
                try:
                    shm.unlink()
                except FileNotFoundError:
                    pass
            self._outputs.clear()
            self._sent_programs.clear()
            self._spawn()
            self.respawns += 1
            log.info("shard %d respawned (pid %s, respawn #%d)",
                     self.index, self.process.pid, self.respawns)

    def load_program(self, program_key: str, program_wire: Dict,
                     timeout_s: Optional[float] = None) -> None:
        """Pre-load one program into the shard (supervisor rewarm)."""
        with self._lock:
            reply = self._roundtrip(
                {"op": "load", "digest": program_key, "program": program_wire},
                timeout_s=timeout_s if timeout_s is not None else self.timeout_s)
            if not reply.get("ok"):
                raise ShardError(
                    f"shard {self.index} rewarm failed: {reply.get('error')}")
            self._sent_programs.add(program_key)

    # -- ops -----------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        section: Dict[str, object] = {
            "shard": self.index,
            "alive": self.available,
            "pid": self.process.pid,
            "requests": self.requests,
            "groups": self.groups,
            "errors": self.errors,
            "respawns": self.respawns,
        }
        if self.available:
            try:
                with self._lock:
                    # Bounded even without a configured watchdog: a wedged
                    # shard must not hang the stats/metrics scrape.
                    reply = self._roundtrip(
                        {"op": "stats"},
                        timeout_s=self.timeout_s
                        if self.timeout_s is not None else 5.0)
                if reply.get("ok"):
                    section.update(reply["stats"])
            except ShardError:
                section["alive"] = False
        return section

    def close(self) -> None:
        with self._lock:
            if self.process.is_alive():
                try:
                    # Bounded: a wedged shard must not hang shutdown.
                    self._roundtrip({"op": "shutdown"}, timeout_s=5.0)
                except ShardError:
                    pass
            self.process.join(timeout=5)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=5)
            self._conn.close()
            for slabs in self._slabs.values():
                for shm, _array in slabs:
                    shm.close()
                    try:
                        shm.unlink()
                    except FileNotFoundError:
                        pass
            self._slabs.clear()
            for shm, _array in self._outputs.values():
                shm.close()
            self._outputs.clear()


class ShardedExecutor:
    """Round-robin dispatcher over N pre-forked shard processes.

    Round-robin (not hash-by-digest) so a single hot digest — the common
    serving profile — still spreads across every shard; shard-local plan
    caches make the second group per (shard, digest) a warm replay.
    """

    def __init__(self, shards: int, use_plans: bool = True,
                 start_method: str = "spawn",
                 timeout_s: Optional[float] = None) -> None:
        if shards < 1:
            raise ServiceError("shards must be >= 1")
        ctx = mp.get_context(start_method)
        self.handles = [
            ShardHandle(index, ctx, use_plans=use_plans, timeout_s=timeout_s)
            for index in range(shards)
        ]
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self.handles)

    def pick(self) -> Optional[ShardHandle]:
        """Next available shard in rotation, or ``None`` if the whole fleet
        is down (the service then runs the group on the local path)."""
        n = len(self.handles)
        for _attempt in range(n):
            handle = self.handles[next(self._counter) % n]
            if handle.available:
                return handle
        return None

    def stats(self) -> List[Dict[str, object]]:
        return [handle.stats() for handle in self.handles]

    def close(self) -> None:
        for handle in self.handles:
            handle.close()


__all__ = [
    "ShardError",
    "ShardHandle",
    "ShardUnavailable",
    "ShardedExecutor",
]
