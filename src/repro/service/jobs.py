"""Durable multi-timestep jobs: checkpointed execution and crash recovery.

A ``steps > 1`` request served synchronously is all-or-nothing: if the
server dies at step T-1 of a 10k-step Hotspot trajectory, every step is
lost.  This module makes the *work itself* durable.  Submitting a job
returns an id immediately; a :class:`JobManager` worker executes the
trajectory in ``checkpoint_every``-step **segments** through the same
double-buffered plan path the synchronous route uses
(:meth:`~repro.backend.base.NumpyBackend.iterate_state`), and after each
segment atomically persists a checkpoint under ``job_dir``:

.. code-block:: text

    <job_dir>/<job_id>/
        job.json            manifest: status, steps, completed, deadline, …
        ckpt-00000007.rpg   RPG1-framed carry state after step 7
        ckpt-00000014.rpg   (the newest two checkpoints are kept)
        result.rpg          final grid, written on completion

Checkpoints reuse the RPG1 wire framing (:mod:`repro.service.wire`), so
every carry buffer carries a per-buffer sha256 — plus one whole-checkpoint
``sha256`` over the canonical manifest fields and the concatenated grid
bytes, so a flipped bit in either metadata or data is detected at load.
Writes are write-tmp → flush → fsync → rename → fsync(dir), so a crash at
any instant leaves either the old complete checkpoint or the new complete
checkpoint, never a torn one.

**Recovery**: :meth:`JobManager.recover` (run at server startup) scans the
job dir; incomplete jobs resume from their newest *valid* checkpoint —
checkpoints that fail checksum validation are discarded (counted in
``repro_job_corrupt_checkpoints_total``) and the previous one is used.
Because segment boundaries replay through the same plan tapes with the
same carry values, a resumed trajectory is **bit-identical** to an
uninterrupted run (property-tested per suite app in
``tests/service/test_jobs.py``).  A step-0 checkpoint is written at submit
time,
so even a crash before the first segment completes loses nothing.

**Idempotency**: clients supply a ``job_key`` (the client library
generates a uuid4 before the first attempt); re-submitting the same key —
e.g. a retry after an ambiguous transport failure, or after a server
restart — returns the existing job instead of starting a second
trajectory.

**Bounded retention**: terminal jobs older than ``job_ttl_s`` are purged
(memory and disk); at most ``max_resident`` completed results stay
resident in memory (the ``repro_jobs_resident_results`` gauge), older ones
are dropped to disk and reloaded on demand.

Fault points (:mod:`repro.faults`): ``job.crash_after_checkpoint``
abandons the worker right after a checkpoint persists — on-disk state is
exactly what a ``kill -9`` leaves — and ``job.checkpoint_corrupt`` flips a
byte of a checkpoint *after* its checksums were computed, which is how the
corrupt-fallback path is tested end to end.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import shutil
import threading
import time
import uuid
import weakref
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from .. import faults as _faults
from ..apps.base import squeeze_result
from ..backend.plan import normalize_carry
from ..telemetry import registry as _telemetry
from .requests import (
    CANCELLED,
    DEADLINE_EXCEEDED,
    NOT_FOUND,
    ExecutionRequest,
    ServiceError,
)
from .wire import WireFormatError, decode_grid_payload, encode_grid_payload

log = logging.getLogger("repro.service.jobs")

_SUBMITS_TOTAL = _telemetry.counter(
    "repro_job_submits_total", "Durable jobs accepted (idempotent-deduped "
    "re-submits are not counted).")
_CHECKPOINTS_TOTAL = _telemetry.counter(
    "repro_job_checkpoints_total", "Job checkpoints atomically persisted.")
_RESUMES_TOTAL = _telemetry.counter(
    "repro_job_resumes_total", "Incomplete jobs resumed from a checkpoint "
    "after a restart.")
_COMPLETIONS_TOTAL = _telemetry.counter(
    "repro_job_completions_total", "Jobs that ran to completion.")
_FAILURES_TOTAL = _telemetry.counter(
    "repro_job_failures_total", "Jobs that terminated with an error "
    "(including mid-trajectory deadline sheds).")
_CANCELLATIONS_TOTAL = _telemetry.counter(
    "repro_job_cancellations_total", "Jobs cancelled between segments.")
_CORRUPT_CHECKPOINTS_TOTAL = _telemetry.counter(
    "repro_job_corrupt_checkpoints_total",
    "Checkpoints discarded at recovery because checksum validation failed.")
_RESULTS_EVICTED_TOTAL = _telemetry.counter(
    "repro_job_results_evicted_total",
    "Resident job results evicted by the max-resident bound (still "
    "servable from disk when a job dir is configured).")
_CHECKPOINT_SECONDS = _telemetry.histogram(
    "repro_job_checkpoint_seconds",
    "Wall time to persist one job checkpoint (encode + fsync + rename).")

#: Job lifecycle states.  ``queued`` and ``running`` are recoverable;
#: ``completed`` / ``failed`` / ``cancelled`` are terminal.
QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
JOB_CANCELLED = "cancelled"
TERMINAL = (COMPLETED, FAILED, JOB_CANCELLED)

_MANIFEST = "job.json"
_RESULT = "result.rpg"
_CKPT_PREFIX = "ckpt-"
_CKPT_SUFFIX = ".rpg"


class JobError(ServiceError):
    """A job operation failed (bad submission, wrong state)."""


class JobNotFound(JobError):
    """No job with that id (or it aged out past the TTL)."""


class JobIntegrityError(JobError):
    """A checkpoint or result file failed checksum validation."""


# ---------------------------------------------------------------------------
# Framing: RPG1 payloads with a whole-file integrity hash
# ---------------------------------------------------------------------------

def _frame(meta: Dict[str, object], grids: List[np.ndarray]) -> bytes:
    """RPG1-frame ``meta`` + ``grids`` with a whole-payload sha256.

    The hash covers the canonical JSON of ``meta`` (sorted keys, before the
    ``sha256`` field is added) followed by every grid's raw bytes — so a
    flipped bit in *either* the metadata (step index, digest) or the data
    fails validation, independently of the per-buffer hashes the RPG1
    descriptors already carry.
    """
    digest = hashlib.sha256(json.dumps(meta, sort_keys=True).encode("utf-8"))
    for grid in grids:
        digest.update(np.ascontiguousarray(grid).tobytes())
    framed = dict(meta)
    framed["sha256"] = digest.hexdigest()
    prefix, buffers = encode_grid_payload(framed, grids)
    return prefix + b"".join(bytes(buffer) for buffer in buffers)


def _unframe(data: bytes) -> Tuple[Dict[str, object], List[np.ndarray]]:
    """Decode + validate a framed payload; raises :class:`JobIntegrityError`."""
    try:
        meta, grids = decode_grid_payload(data)
    except WireFormatError as error:
        raise JobIntegrityError(str(error)) from error
    expected = meta.pop("sha256", None)
    if expected is None:
        raise JobIntegrityError("payload carries no integrity hash")
    digest = hashlib.sha256(json.dumps(meta, sort_keys=True).encode("utf-8"))
    for grid in grids:
        digest.update(np.ascontiguousarray(grid).tobytes())
    if digest.hexdigest() != str(expected):
        raise JobIntegrityError(
            f"payload checksum mismatch (expected {expected}, "
            f"got {digest.hexdigest()})")
    return meta, grids


def _atomic_write(path: Path, data: bytes) -> None:
    """write-tmp → flush → fsync → rename → fsync(dir): crash-atomic."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    dir_fd = os.open(str(path.parent), os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


class _InjectedCrash(BaseException):
    """``job.crash_after_checkpoint`` fired: abandon the worker *without*
    recording a failure, leaving on-disk state exactly as process death
    would.  BaseException so ordinary ``except Exception`` failure
    accounting does not catch it."""


# ---------------------------------------------------------------------------
# Job records
# ---------------------------------------------------------------------------

@dataclass
class Job:
    """One durable job's in-memory record (mirrors ``job.json``)."""

    job_id: str
    job_key: str
    benchmark: str
    steps: int
    checkpoint_every: int
    shape: Tuple[int, ...]
    num_inputs: int
    size_env: Dict[str, int] = field(default_factory=dict)
    priority: str = "normal"
    deadline_at: Optional[float] = None       # absolute wall clock (epoch s)
    digest: str = ""
    status: str = QUEUED
    completed_steps: int = 0
    error: Optional[str] = None
    code: Optional[str] = None
    created_at: float = 0.0
    updated_at: float = 0.0
    resumes: int = 0
    #: In-memory carry state (the inputs of the next step) and result.
    state: Optional[List[np.ndarray]] = None
    result: Optional[np.ndarray] = None
    cancel_requested: bool = False

    def manifest(self) -> Dict[str, object]:
        return {
            "job_id": self.job_id,
            "job_key": self.job_key,
            "benchmark": self.benchmark,
            "steps": self.steps,
            "checkpoint_every": self.checkpoint_every,
            "shape": list(self.shape),
            "num_inputs": self.num_inputs,
            "size_env": dict(self.size_env),
            "priority": self.priority,
            "deadline_at": self.deadline_at,
            "digest": self.digest,
            "status": self.status,
            "completed_steps": self.completed_steps,
            "error": self.error,
            "code": self.code,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "resumes": self.resumes,
        }

    @staticmethod
    def from_manifest(data: Dict[str, object]) -> "Job":
        return Job(
            job_id=str(data["job_id"]),
            job_key=str(data.get("job_key") or data["job_id"]),
            benchmark=str(data["benchmark"]),
            steps=int(data["steps"]),
            checkpoint_every=int(data.get("checkpoint_every", 1)),
            shape=tuple(int(n) for n in data.get("shape") or ()),
            num_inputs=int(data.get("num_inputs", 1)),
            size_env={str(k): int(v)
                      for k, v in dict(data.get("size_env") or {}).items()},
            priority=str(data.get("priority", "normal")),
            deadline_at=(None if data.get("deadline_at") is None
                         else float(data["deadline_at"])),
            digest=str(data.get("digest", "")),
            status=str(data.get("status", QUEUED)),
            completed_steps=int(data.get("completed_steps", 0)),
            error=data.get("error"),
            code=data.get("code"),
            created_at=float(data.get("created_at", 0.0)),
            updated_at=float(data.get("updated_at", 0.0)),
            resumes=int(data.get("resumes", 0)),
        )

    def describe(self) -> Dict[str, object]:
        """The wire/status view of this job."""
        return {
            "job_id": self.job_id,
            "job_key": self.job_key,
            "benchmark": self.benchmark,
            "status": self.status,
            "steps": self.steps,
            "completed_steps": self.completed_steps,
            "checkpoint_every": self.checkpoint_every,
            "priority": self.priority,
            "resumes": self.resumes,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "error": self.error,
            "code": self.code,
        }


#: ``resolve(benchmark, shape, size_env) -> (program, carry_spec, digest)``.
Resolver = Callable[[str, Tuple[int, ...], Dict[str, int]],
                    Tuple[object, Optional[Tuple], str]]


def suite_resolver(benchmark: str, shape: Tuple[int, ...],
                   size_env: Dict[str, int]):
    """The default resolver: the benchmark suite's program + carry spec."""
    from ..apps.suite import get_benchmark
    from ..core.ir import structural_digest

    bench = get_benchmark(benchmark)
    program = bench.build_program()
    return program, bench.carry_spec(), structural_digest(program)


# ---------------------------------------------------------------------------
# The manager
# ---------------------------------------------------------------------------

class JobManager:
    """Executes, checkpoints, recovers, and retires durable jobs.

    Thread-safe: submissions and status/result/cancel queries may come
    from any thread (the event loop, HTTP handlers, tests); one background
    worker thread drains the job queue so trajectory execution never
    blocks the caller.  ``job_dir=None`` runs memory-only (no durability
    across restarts, same segmented semantics) — the mode unit tests use
    for the deadline/cancel/TTL behaviours that don't need a disk.
    """

    def __init__(
        self,
        backend,
        resolve: Optional[Resolver] = None,
        job_dir: Optional[str] = None,
        checkpoint_every: int = 16,
        job_ttl_s: float = 3600.0,
        max_resident: int = 64,
        keep_checkpoints: int = 2,
    ) -> None:
        if checkpoint_every < 1:
            raise JobError("checkpoint_every must be >= 1")
        if keep_checkpoints < 1:
            raise JobError("keep_checkpoints must be >= 1")
        self.backend = backend
        self.resolve: Resolver = resolve if resolve is not None else suite_resolver
        self.job_dir = Path(job_dir) if job_dir else None
        self.checkpoint_every = int(checkpoint_every)
        self.job_ttl_s = float(job_ttl_s)
        self.max_resident = int(max_resident)
        self.keep_checkpoints = int(keep_checkpoints)
        self._jobs: Dict[str, Job] = {}
        self._by_key: Dict[str, str] = {}
        self._lock = threading.RLock()
        self._wake = threading.Condition(self._lock)
        self._queue: Deque[str] = deque()
        self._closed = False
        self._worker: Optional[threading.Thread] = None
        # Operational counters (scraped via the service stats section).
        self.checkpoints_written = 0
        self.jobs_resumed = 0
        self.corrupt_checkpoints = 0
        self.results_evicted = 0
        if self.job_dir is not None:
            self.job_dir.mkdir(parents=True, exist_ok=True)
        self._register_gauge()

    # -- gauges ---------------------------------------------------------------
    def _register_gauge(self) -> None:
        manager_ref = weakref.ref(self)

        def resident() -> float:
            manager = manager_ref()
            if manager is None:
                return 0.0
            with manager._lock:
                return float(sum(
                    1 for job in manager._jobs.values()
                    if job.result is not None
                ))

        _telemetry.gauge(
            "repro_jobs_resident_results",
            "Completed job results currently resident in memory.",
            fn=resident,
        )

    # -- lifecycle ------------------------------------------------------------
    def _ensure_worker(self) -> None:
        if self._worker is None or not self._worker.is_alive():
            self._worker = threading.Thread(
                target=self._worker_loop, name="repro-jobs", daemon=True)
            self._worker.start()

    def close(self, timeout_s: float = 5.0) -> None:
        """Stop the worker (in-flight segment finishes; queue is left)."""
        with self._wake:
            self._closed = True
            self._wake.notify_all()
        if self._worker is not None:
            self._worker.join(timeout=timeout_s)
            self._worker = None

    # -- submission -----------------------------------------------------------
    def submit(self, request: ExecutionRequest,
               job_key: Optional[str] = None,
               checkpoint_every: Optional[int] = None) -> Dict[str, object]:
        """Accept a job; returns its descriptor immediately.

        Idempotent on ``job_key``: a key already known (in memory or on
        disk, including across a restart) returns the existing job's
        descriptor without starting a second trajectory — which is what
        makes client retries safe even after ambiguous transport failures.
        """
        if request.benchmark is None:
            raise JobError("durable jobs require a benchmark-keyed request "
                           "(program-carrying jobs cannot be re-resolved "
                           "after a restart)")
        self._sweep()
        key = str(job_key) if job_key else uuid.uuid4().hex
        with self._lock:
            existing = self._by_key.get(key)
            if existing is not None and existing in self._jobs:
                return self._jobs[existing].describe()
            now = time.time()
            job = Job(
                job_id=uuid.uuid4().hex[:16],
                job_key=key,
                benchmark=request.benchmark,
                steps=request.steps,
                checkpoint_every=int(checkpoint_every
                                     or self.checkpoint_every),
                shape=tuple(request.inputs[0].shape) if request.inputs else (),
                num_inputs=len(request.inputs),
                size_env=dict(request.size_env or {}),
                priority=request.priority,
                deadline_at=(now + request.deadline_ms / 1e3
                             if request.deadline_ms is not None else None),
                status=QUEUED,
                created_at=now,
                updated_at=now,
                state=[np.asarray(grid, dtype=np.float64)
                       for grid in request.inputs],
            )
            if job.checkpoint_every < 1:
                raise JobError("checkpoint_every must be >= 1")
            try:
                _, _, job.digest = self.resolve(job.benchmark, job.shape,
                                                job.size_env)
            except Exception as error:
                raise JobError(f"cannot resolve job program: {error}")
            # The step-0 checkpoint: a crash before the first segment
            # completes must still be recoverable from disk.
            self._persist_checkpoint(job)
            self._persist_manifest(job)
            self._jobs[job.job_id] = job
            self._by_key[key] = job.job_id
            self._queue.append(job.job_id)
            _SUBMITS_TOTAL.inc()
            self._wake.notify_all()
        self._ensure_worker()
        return job.describe()

    # -- queries --------------------------------------------------------------
    def _get(self, job_id: str) -> Job:
        job = self._jobs.get(str(job_id))
        if job is None:
            raise JobNotFound(f"no job {job_id!r}")
        return job

    def status(self, job_id: str) -> Dict[str, object]:
        self._sweep()
        with self._lock:
            return self._get(job_id).describe()

    def result(self, job_id: str) -> Tuple[Dict[str, object], np.ndarray]:
        """The completed job's descriptor + final grid.

        Raises :class:`JobError` while the job is still queued/running and
        :class:`JobNotFound` after it aged out.  Evicted results are
        reloaded (and checksum-validated) from disk.
        """
        self._sweep()
        with self._lock:
            job = self._get(job_id)
            if job.status != COMPLETED:
                raise JobError(
                    f"job {job_id} is {job.status}, not completed"
                    + (f": {job.error}" if job.error else ""))
            if job.result is None:
                job.result = self._load_result(job)
            self._evict_residents(keep=job.job_id)
            return job.describe(), job.result

    def cancel(self, job_id: str) -> Dict[str, object]:
        """Request cancellation; takes effect at the next segment boundary.

        A still-queued job is cancelled immediately; a terminal job is
        returned unchanged (cancel is idempotent).
        """
        with self._lock:
            job = self._get(job_id)
            if job.status in TERMINAL:
                return job.describe()
            job.cancel_requested = True
            if job.status == QUEUED:
                self._finish(job, JOB_CANCELLED, error="cancelled by client",
                             code=CANCELLED)
            return job.describe()

    def list_jobs(self) -> List[Dict[str, object]]:
        self._sweep()
        with self._lock:
            return [job.describe() for job in self._jobs.values()]

    def wait(self, job_id: str, timeout_s: float = 30.0) -> Dict[str, object]:
        """Block until the job reaches a terminal state (test helper)."""
        deadline = time.monotonic() + timeout_s
        with self._wake:
            while True:
                job = self._get(job_id)
                if job.status in TERMINAL:
                    return job.describe()
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise JobError(f"timed out waiting for job {job_id}")
                self._wake.wait(timeout=min(remaining, 0.5))

    def stats(self) -> Dict[str, object]:
        with self._lock:
            by_status: Dict[str, int] = {}
            for job in self._jobs.values():
                by_status[job.status] = by_status.get(job.status, 0) + 1
            return {
                "jobs": by_status,
                "queue_depth": len(self._queue),
                "checkpoints_written": self.checkpoints_written,
                "jobs_resumed": self.jobs_resumed,
                "corrupt_checkpoints": self.corrupt_checkpoints,
                "results_evicted": self.results_evicted,
                "resident_results": sum(
                    1 for job in self._jobs.values()
                    if job.result is not None),
                "checkpoint_every": self.checkpoint_every,
                "job_ttl_s": self.job_ttl_s,
                "max_resident": self.max_resident,
                "job_dir": str(self.job_dir) if self.job_dir else None,
            }

    # -- recovery -------------------------------------------------------------
    def recover(self) -> int:
        """Scan the job dir; resume incomplete jobs; return how many.

        Completed/failed/cancelled jobs are re-registered (results stay on
        disk until asked for).  Incomplete jobs load their newest *valid*
        checkpoint — corrupt ones are discarded with a counter bump and
        the previous one is tried; a job with no valid checkpoint at all
        is failed, never silently re-run from scratch.
        """
        if self.job_dir is None:
            return 0
        resumed = 0
        for manifest_path in sorted(self.job_dir.glob(f"*/{_MANIFEST}")):
            try:
                job = Job.from_manifest(
                    json.loads(manifest_path.read_text(encoding="utf-8")))
            except (OSError, ValueError, KeyError) as error:
                log.warning("skipping unreadable job manifest %s: %s",
                            manifest_path, error)
                continue
            with self._lock:
                if job.job_id in self._jobs:
                    continue
                self._jobs[job.job_id] = job
                self._by_key[job.job_key] = job.job_id
                if job.status in TERMINAL:
                    continue
                loaded = self._load_latest_checkpoint(job)
                if loaded is None:
                    self._finish(job, FAILED,
                                 error="no valid checkpoint survived; "
                                       "refusing to silently re-run")
                    continue
                step, state = loaded
                job.completed_steps = step
                job.state = state
                job.status = QUEUED
                job.resumes += 1
                self.jobs_resumed += 1
                _RESUMES_TOTAL.inc()
                self._persist_manifest(job)
                self._queue.append(job.job_id)
                self._wake.notify_all()
                resumed += 1
                log.info("resuming job %s (%s) from step %d/%d",
                         job.job_id, job.benchmark, step, job.steps)
        if resumed:
            self._ensure_worker()
        self._sweep()
        return resumed

    # -- execution ------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            with self._wake:
                while not self._queue and not self._closed:
                    self._wake.wait(timeout=0.5)
                if self._closed:
                    return
                job_id = self._queue.popleft()
                job = self._jobs.get(job_id)
                if job is None or job.status != QUEUED:
                    continue
                job.status = RUNNING
                job.updated_at = time.time()
                self._persist_manifest(job)
            try:
                self._run_job(job)
            except _InjectedCrash:
                # Simulated process death: leave the job exactly as a real
                # crash would (manifest still "running", newest checkpoint
                # on disk) and abandon this worker thread.  recover() is
                # what brings the job back.
                log.warning("job %s: injected crash after checkpoint",
                            job.job_id)
                return
            except Exception as error:  # noqa: BLE001 - recorded per job
                with self._lock:
                    self._finish(job, FAILED,
                                 error=f"{type(error).__name__}: {error}")

    def _run_job(self, job: Job) -> None:
        program, carry, digest = self.resolve(job.benchmark, job.shape,
                                              job.size_env)
        if job.digest and digest and job.digest != digest:
            with self._lock:
                self._finish(job, FAILED,
                             error=f"program digest changed across restart "
                                   f"({job.digest[:12]} -> {digest[:12]}); "
                                   "refusing to resume")
            return
        spec = normalize_carry(carry, job.num_inputs)
        state = job.state
        if state is None:
            raise JobError(f"job {job.job_id} has no carry state")
        while job.completed_steps < job.steps:
            if job.cancel_requested:
                with self._lock:
                    self._finish(job, JOB_CANCELLED,
                                 error="cancelled by client", code=CANCELLED)
                return
            if job.deadline_at is not None and time.time() >= job.deadline_at:
                # The mid-trajectory shed: stop burning steps the moment
                # the deadline passes a segment boundary.
                with self._lock:
                    self._finish(
                        job, FAILED,
                        error=f"deadline exceeded after "
                              f"{job.completed_steps}/{job.steps} steps",
                        code=DEADLINE_EXCEEDED)
                return
            segment = min(job.checkpoint_every,
                          job.steps - job.completed_steps)
            _, state = self.backend.iterate_state(
                program, state, segment, carry=carry,
                size_env=job.size_env or None)
            with self._lock:
                job.state = state
                job.completed_steps += segment
                job.updated_at = time.time()
                self._persist_checkpoint(job)
                self._persist_manifest(job)
            if _faults.ARMED and _faults.should_fail(
                    "job.crash_after_checkpoint"):
                raise _InjectedCrash()
        # The final output is the carry slot the spec feeds it back into
        # (normalize_carry guarantees one exists) — identical to the array
        # iterate() would have returned, so resume-at-completion needs no
        # separately persisted per-segment output.
        out = state[spec.index("out")]
        result = squeeze_result(np.asarray(out, dtype=np.float64))
        with self._lock:
            job.result = result
            self._persist_result(job, result)
            self._finish(job, COMPLETED)
            self._evict_residents(keep=job.job_id)

    def _finish(self, job: Job, status: str, error: Optional[str] = None,
                code: Optional[str] = None) -> None:
        """Move a job to a terminal state (caller holds the lock)."""
        job.status = status
        job.error = error
        job.code = code
        job.updated_at = time.time()
        if status != COMPLETED:
            job.state = None
        self._persist_manifest(job)
        if status == COMPLETED:
            _COMPLETIONS_TOTAL.inc()
        elif status == JOB_CANCELLED:
            _CANCELLATIONS_TOTAL.inc()
        else:
            _FAILURES_TOTAL.inc()
        self._wake.notify_all()

    # -- persistence ----------------------------------------------------------
    def _dir_for(self, job: Job) -> Optional[Path]:
        if self.job_dir is None:
            return None
        path = self.job_dir / job.job_id
        path.mkdir(parents=True, exist_ok=True)
        return path

    def _persist_manifest(self, job: Job) -> None:
        directory = self._dir_for(job)
        if directory is None:
            return
        _atomic_write(directory / _MANIFEST,
                      json.dumps(job.manifest(), indent=2).encode("utf-8"))

    def _persist_checkpoint(self, job: Job) -> None:
        directory = self._dir_for(job)
        if directory is None or job.state is None:
            return
        started = time.perf_counter()
        meta = {
            "job_id": job.job_id,
            "step": job.completed_steps,
            "steps": job.steps,
            "digest": job.digest,
            "benchmark": job.benchmark,
        }
        data = _frame(meta, job.state)
        if _faults.ARMED and _faults.should_fail("job.checkpoint_corrupt"):
            # Flip one byte of the *body* after every checksum was
            # computed: recovery must detect this and fall back.
            corrupted = bytearray(data)
            corrupted[-1] ^= 0xFF
            data = bytes(corrupted)
        path = directory / f"{_CKPT_PREFIX}{job.completed_steps:08d}{_CKPT_SUFFIX}"
        _atomic_write(path, data)
        self.checkpoints_written += 1
        _CHECKPOINTS_TOTAL.inc()
        _CHECKPOINT_SECONDS.observe(time.perf_counter() - started)
        for stale in self._checkpoints(directory)[:-self.keep_checkpoints]:
            stale.unlink(missing_ok=True)

    @staticmethod
    def _checkpoints(directory: Path) -> List[Path]:
        return sorted(directory.glob(f"{_CKPT_PREFIX}*{_CKPT_SUFFIX}"))

    def _load_latest_checkpoint(
        self, job: Job
    ) -> Optional[Tuple[int, List[np.ndarray]]]:
        directory = self.job_dir / job.job_id if self.job_dir else None
        if directory is None or not directory.is_dir():
            return None
        for path in reversed(self._checkpoints(directory)):
            try:
                meta, grids = _unframe(path.read_bytes())
            except (OSError, JobIntegrityError) as error:
                self.corrupt_checkpoints += 1
                _CORRUPT_CHECKPOINTS_TOTAL.inc()
                log.warning("discarding corrupt checkpoint %s: %s",
                            path, error)
                path.unlink(missing_ok=True)
                continue
            if str(meta.get("job_id")) != job.job_id:
                continue
            if len(grids) != job.num_inputs:
                self.corrupt_checkpoints += 1
                _CORRUPT_CHECKPOINTS_TOTAL.inc()
                continue
            return int(meta["step"]), grids
        return None

    def _persist_result(self, job: Job, result: np.ndarray) -> None:
        directory = self._dir_for(job)
        if directory is None:
            return
        meta = {"job_id": job.job_id, "steps": job.steps,
                "digest": job.digest, "benchmark": job.benchmark}
        _atomic_write(directory / _RESULT, _frame(meta, [result]))

    def _load_result(self, job: Job) -> np.ndarray:
        directory = self.job_dir / job.job_id if self.job_dir else None
        path = directory / _RESULT if directory is not None else None
        if path is None or not path.is_file():
            raise JobError(f"job {job.job_id}'s result is no longer resident "
                           "and no job dir holds it")
        meta, grids = _unframe(path.read_bytes())
        if str(meta.get("job_id")) != job.job_id or len(grids) != 1:
            raise JobIntegrityError(
                f"result file for {job.job_id} names job "
                f"{meta.get('job_id')!r}")
        return grids[0]

    # -- retention ------------------------------------------------------------
    def _evict_residents(self, keep: Optional[str] = None) -> None:
        """Bound resident results to ``max_resident`` (caller holds lock)."""
        residents = [job for job in self._jobs.values()
                     if job.result is not None and job.job_id != keep]
        overflow = (len(residents) + (1 if keep is not None else 0)
                    - self.max_resident)
        if overflow <= 0:
            return
        residents.sort(key=lambda job: job.updated_at)
        for job in residents[:overflow]:
            job.result = None
            self.results_evicted += 1
            _RESULTS_EVICTED_TOTAL.inc()

    def _sweep(self) -> None:
        """Drop terminal jobs older than the TTL (memory + disk)."""
        now = time.time()
        with self._lock:
            expired = [
                job for job in self._jobs.values()
                if job.status in TERMINAL
                and now - job.updated_at > self.job_ttl_s
            ]
            for job in expired:
                self._jobs.pop(job.job_id, None)
                if self._by_key.get(job.job_key) == job.job_id:
                    self._by_key.pop(job.job_key, None)
                if self.job_dir is not None:
                    shutil.rmtree(self.job_dir / job.job_id,
                                  ignore_errors=True)


__all__ = [
    "COMPLETED",
    "FAILED",
    "JOB_CANCELLED",
    "QUEUED",
    "RUNNING",
    "TERMINAL",
    "Job",
    "JobError",
    "JobIntegrityError",
    "JobManager",
    "JobNotFound",
    "suite_resolver",
]
