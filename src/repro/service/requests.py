"""Request/response types of the stencil execution service, plus wire forms.

A request names *what* to run — a registered benchmark or a full serialized
program — and carries concrete input grids.  Responses return the result
(optionally) together with the execution metadata the batching layer
produced: which structural digest the request routed to, which tuned variant
served it, how large the micro-batch was, and the observed latency.

``to_wire``/``from_wire`` translate both types to JSON-able dicts for the
TCP endpoint (JSON lines over an asyncio stream); in-process callers hand
the dataclasses to :class:`~repro.service.server.StencilService` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.ir import Lambda
from ..core.serialize import program_from_dict, program_to_dict


class ServiceError(Exception):
    """A request could not be served (bad request, plan, or execution)."""


#: Admission classes, in drain order: ``high`` is served before ``normal``
#: before ``batch`` whenever more work is queued than one micro-batch holds.
PRIORITIES = ("high", "normal", "batch")

#: Structured error codes carried by :attr:`ExecutionResponse.code`.
DEADLINE_EXCEEDED = "DeadlineExceeded"
ADMISSION_REJECTED = "AdmissionRejected"
UNAUTHORIZED = "Unauthorized"
REQUEST_TOO_LARGE = "RequestTooLarge"
BAD_REQUEST = "BadRequest"
UNAVAILABLE = "Unavailable"
NOT_FOUND = "NotFound"
CANCELLED = "Cancelled"


@dataclass
class ExecutionRequest:
    """One stencil-execution request.

    Exactly one of ``benchmark`` (a registry key such as ``"stencil2d"``)
    or ``program`` (a closed Lift lambda) must be set.  ``inputs`` are the
    concrete input grids, one per program parameter.

    ``priority`` places the request in one of the admission classes of
    :data:`PRIORITIES`; ``deadline_ms`` is the server-side freshness bound —
    a request still queued when its deadline expires is *shed* with a
    structured :data:`DEADLINE_EXCEEDED` response instead of occupying a
    batch slot.  ``steps > 1`` asks for an iterative job: the output is fed
    back through the benchmark's carry specification for that many
    timesteps (the ``/v1/iterate`` HTTP verb).
    """

    inputs: List[np.ndarray]
    benchmark: Optional[str] = None
    program: Optional[Lambda] = None
    size_env: Dict[str, int] = field(default_factory=dict)
    return_result: bool = True
    priority: str = "normal"
    deadline_ms: Optional[float] = None
    steps: int = 1

    def __post_init__(self) -> None:
        if (self.benchmark is None) == (self.program is None):
            raise ServiceError(
                "a request names exactly one of: a benchmark key, a program"
            )
        if self.priority not in PRIORITIES:
            raise ServiceError(
                f"priority must be one of {PRIORITIES}, got {self.priority!r}"
            )
        if int(self.steps) < 1:
            raise ServiceError("steps must be >= 1")
        self.steps = int(self.steps)
        if self.deadline_ms is not None:
            self.deadline_ms = float(self.deadline_ms)
        self.inputs = [np.asarray(grid, dtype=np.float64) for grid in self.inputs]

    @staticmethod
    def for_benchmark(key: str, shape=None, seed: int = 0,
                      return_result: bool = True,
                      priority: str = "normal",
                      deadline_ms: Optional[float] = None,
                      steps: int = 1) -> "ExecutionRequest":
        """A request for a registered benchmark with generated inputs."""
        from ..apps.suite import get_benchmark

        benchmark = get_benchmark(key)
        shape = tuple(shape or benchmark.default_shape)
        return ExecutionRequest(
            inputs=benchmark.make_inputs(shape, seed),
            benchmark=key.lower(),
            return_result=return_result,
            priority=priority,
            deadline_ms=deadline_ms,
            steps=steps,
        )

    @staticmethod
    def for_program(program: Lambda, inputs, size_env=None,
                    return_result: bool = True) -> "ExecutionRequest":
        """A request carrying a full program (e.g. built by a remote client)."""
        return ExecutionRequest(
            inputs=list(inputs),
            program=program,
            size_env=dict(size_env or {}),
            return_result=return_result,
        )

    def to_wire(self) -> Dict[str, object]:
        wire: Dict[str, object] = {
            "inputs": [grid.tolist() for grid in self.inputs],
            "return_result": self.return_result,
        }
        if self.size_env:
            wire["size_env"] = dict(self.size_env)
        if self.benchmark is not None:
            wire["benchmark"] = self.benchmark
        else:
            wire["program"] = program_to_dict(self.program)
        if self.priority != "normal":
            wire["priority"] = self.priority
        if self.deadline_ms is not None:
            wire["deadline_ms"] = self.deadline_ms
        if self.steps != 1:
            wire["steps"] = self.steps
        return wire

    @staticmethod
    def from_wire(data: Dict[str, object]) -> "ExecutionRequest":
        program = data.get("program")
        benchmark = data.get("benchmark")
        inputs = data.get("inputs")
        deadline_ms = data.get("deadline_ms")
        extras = {
            "priority": str(data.get("priority", "normal")),
            "deadline_ms": None if deadline_ms is None else float(deadline_ms),
            "steps": int(data.get("steps", 1)),
        }
        if inputs is None:
            # Generated inputs: the client sends a shape + seed instead of
            # grids — the cheap form the load generator uses.
            if benchmark is None:
                raise ServiceError("generated inputs require a benchmark key")
            return ExecutionRequest.for_benchmark(
                str(benchmark),
                shape=data.get("shape"),
                seed=int(data.get("seed", 0)),
                return_result=bool(data.get("return_result", True)),
                **extras,
            )
        return ExecutionRequest(
            inputs=[np.asarray(grid, dtype=np.float64) for grid in inputs],
            benchmark=None if benchmark is None else str(benchmark),
            program=None if program is None else program_from_dict(program),
            size_env={str(k): int(v)
                      for k, v in dict(data.get("size_env") or {}).items()},
            return_result=bool(data.get("return_result", True)),
            **extras,
        )


@dataclass
class ExecutionResponse:
    """The service's answer to one request.

    ``code`` structures in-band failures: :data:`DEADLINE_EXCEEDED` for
    work shed past its deadline, :data:`ADMISSION_REJECTED` for 429-style
    backpressure (then ``retry_after_ms`` suggests when to come back),
    :data:`UNAUTHORIZED` / :data:`REQUEST_TOO_LARGE` / :data:`BAD_REQUEST`
    for transport-level refusals, ``None`` for success or unclassified
    execution errors.
    """

    result: Optional[np.ndarray]
    benchmark: Optional[str]
    digest: str
    variant: str                 # description of the lowering that served it
    plan_source: str             # "tuned" | "default" | "fallback"
    batch_size: int              # requests in the micro-batch that served it
    batched: bool                # True when batch_size > 1
    latency_s: float
    error: Optional[str] = None
    code: Optional[str] = None
    retry_after_ms: Optional[float] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def shed(self) -> bool:
        """True when the service shed this request past its deadline."""
        return self.code == DEADLINE_EXCEEDED

    @property
    def rejected(self) -> bool:
        """True when admission control pushed this request back (429-style)."""
        return self.code == ADMISSION_REJECTED

    def to_wire(self) -> Dict[str, object]:
        wire: Dict[str, object] = {
            "ok": self.ok,
            "benchmark": self.benchmark,
            "digest": self.digest,
            "variant": self.variant,
            "plan_source": self.plan_source,
            "batch_size": self.batch_size,
            "batched": self.batched,
            "latency_ms": round(self.latency_s * 1e3, 4),
        }
        if self.result is not None:
            wire["result"] = np.asarray(self.result).tolist()
        if self.error is not None:
            wire["error"] = self.error
        if self.code is not None:
            wire["code"] = self.code
        if self.retry_after_ms is not None:
            wire["retry_after_ms"] = round(float(self.retry_after_ms), 3)
        return wire

    @staticmethod
    def from_wire(data: Dict[str, object]) -> "ExecutionResponse":
        result = data.get("result")
        retry_after = data.get("retry_after_ms")
        return ExecutionResponse(
            result=None if result is None else np.asarray(result, dtype=np.float64),
            benchmark=data.get("benchmark"),
            digest=str(data.get("digest", "")),
            variant=str(data.get("variant", "")),
            plan_source=str(data.get("plan_source", "")),
            batch_size=int(data.get("batch_size", 1)),
            batched=bool(data.get("batched", False)),
            latency_s=float(data.get("latency_ms", 0.0)) / 1e3,
            error=data.get("error"),
            code=data.get("code"),
            retry_after_ms=None if retry_after is None else float(retry_after),
        )


__all__ = [
    "ADMISSION_REJECTED",
    "BAD_REQUEST",
    "CANCELLED",
    "DEADLINE_EXCEEDED",
    "NOT_FOUND",
    "PRIORITIES",
    "REQUEST_TOO_LARGE",
    "UNAUTHORIZED",
    "UNAVAILABLE",
    "ExecutionRequest",
    "ExecutionResponse",
    "ServiceError",
]
