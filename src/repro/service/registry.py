"""The tuned-kernel registry: structural digest → best-known execution plan.

Requests are routed by the :func:`~repro.core.ir.structural_digest` of their
*high-level* program.  The registry resolves a digest to an
:class:`RoutingPlan`:

* a digest matching a registered benchmark consults the engine's SQLite
  :class:`~repro.engine.store.ResultsStore` for the lowest-cost stored
  result of past ``repro tune`` / ``repro explore`` sessions and applies
  that variant's rewrite strategy to incoming workloads — the ATF-style
  amortisation of search cost over later executions;
* a cold digest (no store, no stored results, or an unknown program) falls
  back to the default naive lowering, and the serving layer may enqueue a
  background tune for it.

A *tiled* tuned variant only reproduces the full output on shapes its tiles
exactly cover, so :meth:`RoutingPlan.program_for` checks coverage per
request shape and falls back to the naive lowering otherwise (recorded as
plan source ``"fallback"`` in responses and stats).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from ..core.ir import Lambda, structural_digest
from ..engine.store import ResultsStore, StoredResult
from ..rewriting.strategies import NAIVE, LoweredProgram, lower_program
from .requests import ServiceError


@dataclass
class RoutingPlan:
    """How the service executes all traffic for one structural digest."""

    digest: str
    benchmark: Optional[str]          # registry key, when the digest matched
    naive: LoweredProgram
    tuned: Optional[LoweredProgram] = None
    tuned_config: Optional[Dict[str, object]] = None
    tuned_cost: Optional[float] = None
    stencil_extent: int = 3
    #: Fingerprint of the stored result this plan was built from (``None``
    #: for the default lowering) — the staleness check compares it against
    #: the store's current best to rebuild only on an actual change.
    tuned_fingerprint: Optional[str] = None

    @property
    def source(self) -> str:
        return "tuned" if self.tuned is not None else "default"

    def covers(self, shape: Tuple[int, ...]) -> bool:
        """True when the tuned tiling exactly covers this input shape."""
        lowered = self.tuned
        if lowered is None or not lowered.uses_tiling:
            return True
        u = lowered.tile_size
        v = u - (lowered.stencil_size - lowered.stencil_step)
        if v <= 0:
            return False
        radius = (self.stencil_extent - 1) // 2
        for extent in shape:
            padded = extent + 2 * radius
            if padded < u or (padded - u) % v != 0:
                return False
        return True

    def program_for(self, shape: Tuple[int, ...]) -> Tuple[Lambda, str, str]:
        """The program serving one request shape: (program, variant, source)."""
        if self.tuned is not None:
            if self.covers(shape):
                return (self.tuned.program,
                        self.tuned.strategy.describe(), "tuned")
            return (self.naive.program, self.naive.strategy.describe(),
                    "fallback")
        return (self.naive.program, self.naive.strategy.describe(), "default")


class TunedKernelRegistry:
    """Resolve programs to routing plans, consulting the results store.

    The registry notices store improvements *by itself*: ``plan_for``
    re-polls the store's
    :meth:`~repro.engine.store.ResultsStore.generation` counter (throttled
    to at most once per ``poll_interval`` seconds).  When the store gained
    results mid-flight — a background tune, or a concurrent ``repro tune``
    in another process — cached plans are marked *stale*; the next lookup
    of a stale digest re-reads just that digest's best stored result (one
    point query) and rebuilds the plan only if the best actually changed
    (compared by result fingerprint), so a tune writing hundreds of rows
    for one benchmark does not churn every other digest's plan.  Explicit
    :meth:`refresh` still works and skips the throttle.
    """

    def __init__(
        self,
        store: Union[ResultsStore, str, None] = None,
        device: str = "nvidia",
        poll_interval: float = 0.25,
    ) -> None:
        self._owns_store = isinstance(store, str)
        self.store: Optional[ResultsStore] = (
            ResultsStore(store) if isinstance(store, str) else store
        )
        self.device = device
        self.poll_interval = poll_interval
        self._plans: Dict[str, RoutingPlan] = {}
        self._stale: set = set()
        self._benchmark_digest: Dict[str, str] = {}
        self._digest_to_benchmark: Optional[Dict[str, str]] = None
        self._lock = threading.Lock()
        self._generation = self.store.generation() if self.store is not None else 0
        self._last_poll = 0.0
        self.lookups = 0
        self.tuned_hits = 0
        self.cold_misses = 0
        self.invalidations = 0

    def close(self) -> None:
        if self._owns_store and self.store is not None:
            self.store.close()

    # -- routing -------------------------------------------------------------
    def _benchmark_digests(self) -> Dict[str, str]:
        """Digest of every registered benchmark's high-level program.

        Built once: it lets a *serialized program* request route to the same
        tuned plan as the equivalent benchmark-name request.
        """
        if self._digest_to_benchmark is None:
            from ..apps.suite import ALL_BENCHMARKS

            self._digest_to_benchmark = {
                structural_digest(benchmark.build_program()): key
                for key, benchmark in ALL_BENCHMARKS.items()
            }
        return self._digest_to_benchmark

    def _maybe_invalidate(self) -> None:
        """Mark cached plans stale when the store advanced underneath us."""
        if self.store is None:
            return
        import time

        now = time.monotonic()
        if now - self._last_poll < self.poll_interval:
            return
        self._last_poll = now
        generation = self.store.generation()
        if generation != self._generation:
            self._generation = generation
            with self._lock:
                self._stale.update(self._plans)

    def _cached_plan(self, digest: str) -> Optional[RoutingPlan]:
        """The cached plan for a digest, re-validated if marked stale.

        A stale plan costs one point query against the store; the plan is
        dropped (forcing a rebuild) only when the best stored result's
        fingerprint differs from the one the plan was built from.
        """
        with self._lock:
            plan = self._plans.get(digest)
            stale = digest in self._stale
        if plan is None or not stale:
            return plan
        best = self._current_best(plan)
        fingerprint = best.fingerprint if best is not None else None
        if fingerprint == plan.tuned_fingerprint:
            with self._lock:
                self._stale.discard(digest)
            return plan
        with self._lock:
            self._plans.pop(digest, None)
            self._stale.discard(digest)
        self.invalidations += 1
        return None

    def _current_best(self, plan: RoutingPlan) -> Optional[StoredResult]:
        from ..apps.suite import ALL_BENCHMARKS

        if self.store is None:
            return None
        if plan.benchmark is not None:
            bench = ALL_BENCHMARKS.get(plan.benchmark)
            return self._best_result(bench)
        return self.store.best_for_digest(
            structural_digest(plan.naive.program), self.device
        )

    def plan_for(self, benchmark: Optional[str] = None,
                 program: Optional[Lambda] = None) -> RoutingPlan:
        """The execution plan for a request (cached per digest)."""
        from ..apps.suite import ALL_BENCHMARKS, get_benchmark

        self.lookups += 1
        self._maybe_invalidate()
        if benchmark is not None:
            key = benchmark.lower()
            digest = self._benchmark_digest.get(key)
            if digest is not None:
                # Hot path: a benchmark's digest (and usually its whole
                # plan) is computed once, not once per request.
                plan = self._cached_plan(digest)
                if plan is not None:
                    if plan.tuned is not None:
                        self.tuned_hits += 1
                    return plan
            bench = get_benchmark(key)
            program = bench.build_program()
            digest = structural_digest(program)
            self._benchmark_digest[key] = digest
        elif program is not None:
            digest = structural_digest(program)
            key = self._benchmark_digests().get(digest)
            bench = ALL_BENCHMARKS.get(key) if key is not None else None
        else:
            raise ServiceError("plan_for needs a benchmark key or a program")

        plan = self._cached_plan(digest)
        if plan is not None:
            if plan.tuned is not None:
                self.tuned_hits += 1
            return plan

        plan = self._build_plan(digest, key if bench is not None else None,
                                program, bench)
        with self._lock:
            self._plans.setdefault(digest, plan)
            plan = self._plans[digest]
        if plan.tuned is not None:
            self.tuned_hits += 1
        else:
            self.cold_misses += 1
        return plan

    def _build_plan(self, digest: str, key: Optional[str],
                    program: Lambda, bench) -> RoutingPlan:
        naive = lower_program(program, NAIVE)
        extent = bench.stencil_extent if bench is not None else 3
        plan = RoutingPlan(digest=digest, benchmark=key, naive=naive,
                             stencil_extent=extent)
        best = self._best_result(bench)
        if best is None and bench is None and self.store is not None:
            # Unknown program: the store keys results by the digest of the
            # *lowered* expression, so look its default lowering up — a hit
            # recalls the best configuration any past session found for
            # exactly this expression.
            best = self.store.best_for_digest(
                structural_digest(naive.program), self.device
            )
        if best is not None:
            try:
                tuned = lower_program(program, best.variant.to_strategy())
            except Exception:
                return plan  # un-lowerable stored variant: serve the default
            plan.tuned = tuned
            plan.tuned_config = dict(best.config)
            plan.tuned_cost = best.cost
            plan.tuned_fingerprint = best.fingerprint
        return plan

    def _best_result(self, bench) -> Optional[StoredResult]:
        if self.store is None or bench is None:
            return None
        return self.store.best_for(bench.name, self.device)

    # -- refresh (after a background tune) ------------------------------------
    def refresh(self, digest: str) -> Optional[RoutingPlan]:
        """Re-consult the store for one digest (e.g. after a tune finished)."""
        with self._lock:
            plan = self._plans.pop(digest, None)
            self._stale.discard(digest)
        if plan is None:
            return None
        return self.plan_for(benchmark=plan.benchmark) \
            if plan.benchmark is not None else None

    def stats(self) -> Dict[str, int]:
        with self._lock:
            cached = len(self._plans)
            tuned = sum(1 for plan in self._plans.values()
                        if plan.tuned is not None)
        return {
            "lookups": self.lookups,
            "tuned_hits": self.tuned_hits,
            "cold_misses": self.cold_misses,
            "plans_cached": cached,
            "plans_tuned": tuned,
            "store_generation": self._generation,
            "invalidations": self.invalidations,
        }


#: Backwards-compatible alias — the routing plan predates the backend's
#: buffer-pooled :class:`~repro.backend.plan.ExecutionPlan` and was renamed
#: to keep the two concepts distinct.
ExecutionPlan = RoutingPlan


# ---------------------------------------------------------------------------
# Digest circuit breakers
# ---------------------------------------------------------------------------

class _BreakerEntry:
    __slots__ = ("state", "failures", "opened_at", "opens", "probe_inflight",
                 "last_reason")

    def __init__(self) -> None:
        self.state = "closed"
        self.failures = 0
        self.opened_at = 0.0
        self.opens = 0
        self.probe_inflight = False
        self.last_reason = ""


class DigestCircuitBreaker:
    """Per-digest circuit breaker over the serving fast path.

    A digest whose fast path keeps failing — plan capture raises on every
    request, or its groups keep taking shards down — re-pays that failure
    on every request.  The breaker caps the bill: after ``threshold``
    *consecutive* failures the digest is **quarantined** (state ``open``)
    and its groups are served on the generic unfused local path, which
    skips plan capture and shard dispatch entirely.  After ``cooldown_s``
    the breaker goes ``half_open`` and lets exactly **one** group (the
    probe) through the fast path: success closes the breaker, failure
    re-opens it for another cooldown.

    ``threshold=0`` disables the breaker (``allow`` is always True).  The
    clock is injectable so the state machine is unit-testable without
    sleeping.  Thread-safe: ``allow`` runs on executor threads while
    ``record_*`` runs on the event loop.
    """

    def __init__(self, threshold: int = 3, cooldown_s: float = 5.0,
                 clock=None) -> None:
        import time as _time

        self.threshold = int(threshold)
        self.cooldown_s = float(cooldown_s)
        self._clock = clock if clock is not None else _time.monotonic
        self._entries: Dict[str, _BreakerEntry] = {}
        self._lock = threading.Lock()
        self.opens = 0
        self.closes = 0

    def allow(self, digest: str) -> bool:
        """May this group take the fast path?  ``False`` = quarantined."""
        if self.threshold <= 0:
            return True
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None or entry.state == "closed":
                return True
            if entry.state == "open":
                if self._clock() - entry.opened_at < self.cooldown_s:
                    return False
                entry.state = "half_open"
                entry.probe_inflight = False
            # half_open: exactly one concurrent probe takes the fast path.
            if entry.probe_inflight:
                return False
            entry.probe_inflight = True
            return True

    def record_failure(self, digest: str, reason: str = "") -> None:
        if self.threshold <= 0:
            return
        with self._lock:
            entry = self._entries.setdefault(digest, _BreakerEntry())
            entry.failures += 1
            entry.last_reason = reason
            entry.probe_inflight = False
            if (entry.state == "half_open"
                    or (entry.state == "closed"
                        and entry.failures >= self.threshold)):
                entry.state = "open"
                entry.opened_at = self._clock()
                entry.opens += 1
                self.opens += 1

    def record_success(self, digest: str) -> None:
        if self.threshold <= 0:
            return
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                return
            if entry.state != "closed":
                self.closes += 1
            del self._entries[digest]

    def state(self, digest: str) -> str:
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                return "closed"
            if (entry.state == "open"
                    and self._clock() - entry.opened_at >= self.cooldown_s):
                return "half_open"
            return entry.state

    def open_count(self) -> int:
        with self._lock:
            return sum(1 for entry in self._entries.values()
                       if entry.state == "open")

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "threshold": self.threshold,
                "cooldown_s": self.cooldown_s,
                "opens": self.opens,
                "closes": self.closes,
                "digests": {
                    digest[:16]: {
                        "state": entry.state,
                        "failures": entry.failures,
                        "opens": entry.opens,
                        "last_reason": entry.last_reason,
                    }
                    for digest, entry in self._entries.items()
                },
            }


__all__ = ["DigestCircuitBreaker", "ExecutionPlan", "RoutingPlan",
           "TunedKernelRegistry"]
