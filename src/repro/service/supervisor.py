"""Shard supervision: detect dead/wedged shards, respawn, re-warm, rejoin.

The :class:`~repro.service.shards.ShardedExecutor` gives the service
redundant capacity; this module gives it *self-healing*.  A
:class:`ShardSupervisor` is an asyncio task on the service loop that
sweeps the fleet every ``check_interval_s``:

1. **Detect** — a shard is down when its handle was marked failed (a
   round-trip broke or tripped the watchdog timeout) or its process is no
   longer alive.  Detection is passive on the supervisor side: the
   per-round-trip watchdog in :meth:`ShardHandle._roundtrip` is what
   notices a *wedged* (alive but unresponsive) worker, because only a
   round-trip has a reply to wait for.
2. **Respawn** — the dead process is reaped and replaced
   (:meth:`ShardHandle.respawn`) on an executor thread (spawning blocks
   ~1 s), gated by bounded exponential backoff (``backoff_base_s`` ·
   2^respawns, capped at ``backoff_max_s``) and a ``max_respawns`` budget
   per shard; a shard that exhausts its budget is left out of rotation
   and logged once.
3. **Re-warm** — every program wire dict the parent has ever routed (its
   ``(digest:variant) -> wire`` registry) is pre-loaded into the new
   process, so the shard rejoins the rotation with a warm program cache
   instead of paying a program resend on its first group per digest.
   Plans rebuild on first use, exactly like a cold service.
4. **Rejoin** — only after a successful rewarm is ``failed`` cleared,
   making the shard visible to :meth:`ShardedExecutor.pick` again.

Redispatch of the failed shard's in-flight groups is *not* done here: the
executor thread that caught :class:`~repro.service.shards.ShardUnavailable`
redispatches its own group immediately (see
``StencilService._compute_group_sharded``) rather than parking it on a
supervisor queue — the reply never arrived, so re-executing elsewhere is
idempotent.  The supervisor's job is purely to restore capacity.

Every transition is counted: ``repro_shard_restarts_total`` (successful
respawns) and ``repro_shard_respawn_failures_total`` here,
``repro_shard_redispatches_total`` in the server's redispatch path.
"""

from __future__ import annotations

import asyncio
import logging
import time
from typing import Callable, Dict, Optional

from ..telemetry import registry as _telemetry
from .shards import ShardedExecutor, ShardHandle

log = logging.getLogger("repro.service.supervisor")

_SHARD_RESTARTS_TOTAL = _telemetry.counter(
    "repro_shard_restarts_total",
    "Shard processes respawned by the supervisor.")
_SHARD_RESPAWN_FAILURES_TOTAL = _telemetry.counter(
    "repro_shard_respawn_failures_total",
    "Shard respawn attempts that themselves failed.")

DEFAULT_MAX_RESPAWNS = 5
DEFAULT_BACKOFF_BASE_S = 0.25
DEFAULT_BACKOFF_MAX_S = 5.0
DEFAULT_CHECK_INTERVAL_S = 0.2


class ShardSupervisor:
    """Monitor task that keeps a shard fleet at full strength.

    Parameters
    ----------
    executor:
        The fleet to supervise.
    wires:
        The parent's live ``(digest:variant) -> program wire dict``
        registry (the service's ``_wires``); read at rewarm time, so
        programs routed after a respawn began are still warmed next time.
    max_respawns:
        Per-shard respawn budget; exhausted shards stay down.
    on_restart:
        Optional callback ``(handle) -> None`` invoked on the event loop
        after a shard rejoins (the service bumps its counters/trace here).
    """

    def __init__(self, executor: ShardedExecutor, wires: Dict[str, Dict],
                 *, max_respawns: int = DEFAULT_MAX_RESPAWNS,
                 backoff_base_s: float = DEFAULT_BACKOFF_BASE_S,
                 backoff_max_s: float = DEFAULT_BACKOFF_MAX_S,
                 check_interval_s: float = DEFAULT_CHECK_INTERVAL_S,
                 on_restart: Optional[Callable[[ShardHandle], None]] = None,
                 ) -> None:
        self.executor = executor
        self.wires = wires
        self.max_respawns = max_respawns
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.check_interval_s = check_interval_s
        self.on_restart = on_restart
        self.restarts = 0
        self.respawn_failures = 0
        self._task: Optional[asyncio.Task] = None
        self._inflight: set = set()          # shard indices respawning now
        self._next_attempt: Dict[int, float] = {}
        self._gave_up: set = set()

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="repro-shard-supervisor")

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    # -- the monitor loop ----------------------------------------------------
    async def _run(self) -> None:
        while True:
            try:
                self._sweep()
            except Exception:  # noqa: BLE001 - the monitor must not die
                log.exception("supervisor sweep failed")
            await asyncio.sleep(self.check_interval_s)

    def _sweep(self) -> None:
        now = time.monotonic()
        for handle in self.executor.handles:
            index = handle.index
            if index in self._inflight:
                continue
            if not handle.failed and handle.process.is_alive():
                continue
            if not handle.failed:
                handle.mark_failed("process died")
            if handle.respawns >= self.max_respawns:
                if index not in self._gave_up:
                    self._gave_up.add(index)
                    log.error(
                        "shard %d exhausted its respawn budget (%d); "
                        "leaving it out of rotation", index, self.max_respawns)
                continue
            due = self._next_attempt.get(index)
            if due is None:
                delay = min(self.backoff_base_s * (2 ** handle.respawns),
                            self.backoff_max_s)
                self._next_attempt[index] = now + delay
                log.info("shard %d down; respawn #%d in %.2fs",
                         index, handle.respawns + 1, delay)
                continue
            if now < due:
                continue
            self._inflight.add(index)
            loop = asyncio.get_running_loop()
            future = loop.run_in_executor(
                None, self._respawn_and_rewarm, handle)
            future.add_done_callback(
                lambda f, handle=handle: self._respawn_done(handle, f))

    # -- respawn (executor thread) -------------------------------------------
    def _respawn_and_rewarm(self, handle: ShardHandle) -> None:
        handle.respawn()
        # Rewarm from a snapshot of the parent's digest registry; a program
        # routed mid-rewarm just falls back to the first-group resend path.
        for program_key, wire in list(self.wires.items()):
            handle.load_program(program_key, wire, timeout_s=30.0)
        handle.failed = False

    def _respawn_done(self, handle: ShardHandle, future) -> None:
        index = handle.index
        self._inflight.discard(index)
        self._next_attempt.pop(index, None)
        error = future.exception()
        if error is not None:
            self.respawn_failures += 1
            _SHARD_RESPAWN_FAILURES_TOTAL.inc()
            handle.mark_failed(f"respawn failed: {error}")
            handle.failed = True
            log.warning("shard %d respawn failed: %s", index, error)
            return
        self.restarts += 1
        _SHARD_RESTARTS_TOTAL.inc()
        log.info("shard %d rejoined the rotation", index)
        if self.on_restart is not None:
            try:
                self.on_restart(handle)
            except Exception:  # noqa: BLE001 - observer must not kill us
                log.exception("on_restart callback failed")

    # -- observability -------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        return {
            "restarts": self.restarts,
            "respawn_failures": self.respawn_failures,
            "respawning": sorted(self._inflight),
            "gave_up": sorted(self._gave_up),
            "max_respawns": self.max_respawns,
        }


__all__ = ["ShardSupervisor"]
