"""The binary grid wire format shared by the HTTP endpoint and the client.

JSON works for small grids, but a 1024² float64 grid rendered as nested
JSON lists is ~19 MB of text (and a giant intermediate string on both
sides).  The ``application/x-repro-grids`` body avoids that entirely:

.. code-block:: text

    magic   b"RPG1"                      (4 bytes)
    hlen    little-endian uint32          (4 bytes)
    header  UTF-8 JSON of hlen bytes      (request/response metadata +
                                           per-grid {"shape", "dtype"})
    grids   raw little-endian buffers, concatenated in header order

The header carries everything the JSON wire form does *except* the grids
(``benchmark``/``program``, ``size_env``, ``priority``, ``deadline_ms``,
``steps``, …) so the two content types are interchangeable; only the grid
payload changes representation.  Encoders yield the raw array buffers as
memoryviews — :func:`iter_chunks` turns them into bounded-size chunks for
chunked HTTP upload, so neither side ever materialises the full body as
one string or list.

**End-to-end payload integrity**: every grid descriptor carries a
``sha256`` of its raw little-endian bytes, computed at encode time and
verified at decode time on *both* sides of the wire (server decoding an
upload, client decoding a download).  A flipped bit anywhere between the
two ``hashlib`` calls — a proxy mangling a body, a truncated buffer that
still happens to parse, injected corruption — surfaces as a structured
:class:`WireFormatError` instead of silently executing (or returning) a
corrupted grid.  The same framing backs durable-job checkpoints on disk
(:mod:`repro.service.jobs`), so storage corruption is caught by the same
checksums.  The ``wire.payload_corrupt`` fault point
(:mod:`repro.faults`) flips one byte of the first grid *after* the
checksums are computed, which is how tests and chaos drills prove the
detection path end to end.
"""

from __future__ import annotations

import hashlib
import json
import struct
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .. import faults as _faults
from ..telemetry import registry as _telemetry

MAGIC = b"RPG1"

_CHECKSUM_FAILURES_TOTAL = _telemetry.counter(
    "repro_wire_checksum_failures_total",
    "Grid payloads rejected at decode because a per-buffer sha256 "
    "did not match.",
)

#: Content type of the binary grid body (requests and responses).
CONTENT_TYPE_GRIDS = "application/x-repro-grids"
#: Content type of the JSON body (the TCP wire form, over HTTP).
CONTENT_TYPE_JSON = "application/json"

#: Default chunk size for chunked uploads / streamed downloads.
DEFAULT_CHUNK_BYTES = 256 * 1024


class WireFormatError(ValueError):
    """A binary grid payload did not parse."""


def encode_grid_payload(
    meta: Dict[str, object], grids: Sequence[np.ndarray]
) -> Tuple[bytes, List[memoryview]]:
    """Frame ``meta`` + ``grids`` as (prefix bytes, raw grid buffers).

    The prefix is ``MAGIC + hlen + header``; the buffers are the grids'
    little-endian contiguous bytes, *not copied* when the array already is
    little-endian contiguous.  Callers concatenate (or chunk-stream) the
    prefix followed by each buffer in order.
    """
    descriptors = []
    buffers: List[memoryview] = []
    for grid in grids:
        array = np.ascontiguousarray(grid)
        if array.dtype.byteorder == ">":  # normalise to little-endian
            array = array.astype(array.dtype.newbyteorder("<"))
        buffer = memoryview(array).cast("B")
        descriptors.append({
            "shape": list(array.shape),
            "dtype": array.dtype.str.lstrip("<=|"),
            "sha256": hashlib.sha256(buffer).hexdigest(),
        })
        buffers.append(buffer)
    if _faults.ARMED and buffers and _faults.should_fail("wire.payload_corrupt"):
        # Flip one byte of the first grid *after* its checksum was taken,
        # so the decoder's verification must catch it.
        corrupted = bytearray(buffers[0])
        corrupted[0] ^= 0xFF
        buffers[0] = memoryview(bytes(corrupted))
    header = dict(meta)
    header["grids"] = descriptors
    header_bytes = json.dumps(header).encode("utf-8")
    prefix = MAGIC + struct.pack("<I", len(header_bytes)) + header_bytes
    return prefix, buffers


def payload_length(prefix: bytes, buffers: Sequence[memoryview]) -> int:
    """Total body size in bytes (for ``Content-Length``)."""
    return len(prefix) + sum(buffer.nbytes for buffer in buffers)


def iter_chunks(prefix: bytes, buffers: Sequence[memoryview],
                chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> Iterator[bytes]:
    """Yield the framed payload as chunks of at most ``chunk_bytes``.

    This is the chunked-upload driver: each yielded chunk is a plain
    ``bytes`` slice, so a 1024² grid crosses the socket in ~32 pieces
    without ever being joined into one object.
    """
    chunk_bytes = max(1, int(chunk_bytes))
    pieces: Iterable[memoryview] = [memoryview(prefix), *buffers]
    for piece in pieces:
        for start in range(0, piece.nbytes, chunk_bytes):
            yield bytes(piece[start:start + chunk_bytes])


def decode_grid_header(data: bytes) -> Tuple[Dict[str, object], int]:
    """Parse the framed header; returns (header dict, body offset)."""
    if len(data) < 8 or data[:4] != MAGIC:
        raise WireFormatError("not a repro grid payload (bad magic)")
    (header_length,) = struct.unpack("<I", data[4:8])
    if len(data) < 8 + header_length:
        raise WireFormatError("truncated grid payload header")
    try:
        header = json.loads(data[8:8 + header_length].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireFormatError(f"grid payload header is not JSON: {error}")
    if not isinstance(header, dict):
        raise WireFormatError("grid payload header must be a JSON object")
    return header, 8 + header_length


def decode_grid_payload(
    data: bytes,
) -> Tuple[Dict[str, object], List[np.ndarray]]:
    """Decode a full framed payload into (meta, writable grids).

    Grid bytes are interpreted in place via ``np.frombuffer`` and then
    copied once into writable arrays — one buffer copy per grid, never a
    textual intermediate.
    """
    header, offset = decode_grid_header(data)
    grids: List[np.ndarray] = []
    for index, descriptor in enumerate(header.get("grids") or []):
        shape = tuple(int(extent) for extent in descriptor["shape"])
        dtype = np.dtype(str(descriptor["dtype"])).newbyteorder("<")
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if offset + nbytes > len(data):
            raise WireFormatError("truncated grid payload body")
        expected: Optional[str] = descriptor.get("sha256")
        if expected is not None:
            actual = hashlib.sha256(data[offset:offset + nbytes]).hexdigest()
            if actual != str(expected):
                _CHECKSUM_FAILURES_TOTAL.inc()
                raise WireFormatError(
                    f"grid {index} checksum mismatch: payload corrupted in "
                    f"transit or at rest (expected sha256 {expected}, "
                    f"got {actual})"
                )
        flat = np.frombuffer(data, dtype=dtype, count=int(np.prod(shape, dtype=np.int64)),
                             offset=offset)
        grids.append(flat.reshape(shape).astype(dtype.newbyteorder("="),
                                                copy=True))
        offset += nbytes
    if offset != len(data):
        raise WireFormatError(
            f"grid payload has {len(data) - offset} trailing bytes"
        )
    meta = {key: value for key, value in header.items() if key != "grids"}
    return meta, grids


__all__ = [
    "CONTENT_TYPE_GRIDS",
    "CONTENT_TYPE_JSON",
    "DEFAULT_CHUNK_BYTES",
    "MAGIC",
    "WireFormatError",
    "decode_grid_header",
    "decode_grid_payload",
    "encode_grid_payload",
    "iter_chunks",
    "payload_length",
]
