"""The HTTP transport: ``/v1/execute``, ``/v1/iterate``, and ``/v1/jobs``.

A small asyncio HTTP/1.1 endpoint (same zero-dependency style as the
telemetry sidecar, plus keep-alive and request bodies) that feeds the
**same** :class:`~repro.service.server.StencilService` batcher as the
JSON-lines TCP endpoint — an HTTP request and a TCP request for the same
digest land in the same micro-batch.

Content negotiation, both directions:

* ``Content-Type: application/json`` — the TCP wire form as an HTTP body.
* ``Content-Type: application/x-repro-grids`` — the binary grid framing of
  :mod:`repro.service.wire`: JSON header (everything except grids) followed
  by raw little-endian buffers.  ``Accept: application/x-repro-grids``
  selects the same framing for the response, written buffer-by-buffer so a
  1024² float64 result streams out without ever being one JSON string.

Admission outcomes map onto status codes: ``DeadlineExceeded`` → 504,
``AdmissionRejected`` → 429 (with a ``Retry-After`` header from
``retry_after_ms``), bad auth → 401, an oversized body → 413, a malformed
request → 400, an unknown job id → 404, a result requested before the job
completed → 409.  The response body always carries the structured
:class:`~repro.service.requests.ExecutionResponse` wire form, so HTTP and
TCP clients see identical in-band information.

The durable-job surface (:mod:`repro.service.jobs`): ``POST /v1/jobs``
submits a checkpointed multi-timestep job (idempotent on ``job_key``),
``GET /v1/jobs/<id>`` polls, ``GET /v1/jobs/<id>/result`` fetches the
final grid, ``DELETE /v1/jobs/<id>`` cancels at the next segment boundary.
"""

from __future__ import annotations

import asyncio
import hmac
import json
import logging
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.serialize import program_from_dict
from ..telemetry import registry as _telemetry
from .jobs import JobError, JobNotFound
from .requests import (
    ADMISSION_REJECTED,
    BAD_REQUEST,
    CANCELLED,
    DEADLINE_EXCEEDED,
    NOT_FOUND,
    REQUEST_TOO_LARGE,
    UNAUTHORIZED,
    ExecutionRequest,
    ExecutionResponse,
)
from .wire import (
    CONTENT_TYPE_GRIDS,
    CONTENT_TYPE_JSON,
    DEFAULT_CHUNK_BYTES,
    WireFormatError,
    decode_grid_payload,
    encode_grid_payload,
    payload_length,
)

log = logging.getLogger("repro.service.http")

_REJECTS_TOTAL = _telemetry.counter(
    "repro_rejects_total",
    "Requests pushed back by admission control (429-style), by reason.",
    label="reason",
)
_HTTP_REQUESTS_TOTAL = _telemetry.counter(
    "repro_http_requests_total", "HTTP requests answered, by status class.",
    label="status",
)

_REASONS = {200: "OK", 400: "Bad Request", 401: "Unauthorized",
            404: "Not Found", 405: "Method Not Allowed",
            409: "Conflict", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error",
            504: "Gateway Timeout"}

#: ``ExecutionResponse.code`` → HTTP status.
_CODE_STATUS = {
    DEADLINE_EXCEEDED: 504,
    ADMISSION_REJECTED: 429,
    UNAUTHORIZED: 401,
    REQUEST_TOO_LARGE: 413,
    BAD_REQUEST: 400,
    NOT_FOUND: 404,
    CANCELLED: 409,
}


class _HTTPError(Exception):
    """An HTTP-level refusal answered before the request reaches the batcher."""

    def __init__(self, status: int, code: str, message: str,
                 close: bool = False) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.close = close


def _status_for(response: ExecutionResponse) -> int:
    if response.ok:
        return 200
    return _CODE_STATUS.get(response.code or "", 500)


def request_and_meta_from_body(
    content_type: str, body: bytes, steps_required: bool = False
) -> Tuple[ExecutionRequest, Dict[str, object]]:
    """Decode one HTTP body into (request, raw metadata dict).

    The metadata dict is the JSON message (or binary header) as sent —
    job routes read their extra fields (``job_key``, ``checkpoint_every``)
    from it without those keys having to exist on
    :class:`ExecutionRequest`.  ``steps_required`` is the ``/v1/iterate``
    contract: the body must name ``steps`` explicitly (an iterate call
    without a step count is a client bug, not a 1-step job).
    """
    media = content_type.split(";")[0].strip().lower()
    if media == CONTENT_TYPE_GRIDS:
        try:
            meta, grids = decode_grid_payload(body)
        except WireFormatError as error:
            raise _HTTPError(400, BAD_REQUEST, str(error))
        if steps_required and "steps" not in meta:
            raise _HTTPError(400, BAD_REQUEST,
                             "/v1/iterate requires 'steps' in the header")
        if not grids:
            # Generated-inputs form: benchmark + shape/seed in the header.
            return ExecutionRequest.from_wire(meta), meta
        program = meta.get("program")
        deadline_ms = meta.get("deadline_ms")
        return ExecutionRequest(
            inputs=list(grids),
            benchmark=(None if meta.get("benchmark") is None
                       else str(meta["benchmark"])),
            program=None if program is None else program_from_dict(program),
            size_env={str(k): int(v)
                      for k, v in dict(meta.get("size_env") or {}).items()},
            return_result=bool(meta.get("return_result", True)),
            priority=str(meta.get("priority", "normal")),
            deadline_ms=None if deadline_ms is None else float(deadline_ms),
            steps=int(meta.get("steps", 1)),
        ), meta
    if media in (CONTENT_TYPE_JSON, ""):
        try:
            message = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _HTTPError(400, BAD_REQUEST, f"body is not JSON: {error}")
        if not isinstance(message, dict):
            raise _HTTPError(400, BAD_REQUEST, "body must be a JSON object")
        if steps_required and "steps" not in message:
            raise _HTTPError(400, BAD_REQUEST,
                             "/v1/iterate requires 'steps' in the body")
        return ExecutionRequest.from_wire(message), message
    raise _HTTPError(400, BAD_REQUEST,
                     f"unsupported content type {media!r}")


def request_from_body(content_type: str, body: bytes,
                      steps_required: bool = False) -> ExecutionRequest:
    """Decode one HTTP body into an :class:`ExecutionRequest`."""
    request, _meta = request_and_meta_from_body(content_type, body,
                                               steps_required)
    return request


def response_body(response: ExecutionResponse,
                  accept: str) -> Tuple[str, bytes, List[memoryview]]:
    """Encode one response as (content type, prefix bytes, grid buffers).

    The JSON form returns everything in the prefix; the binary form keeps
    the result grid as a raw buffer so the writer can stream it.
    """
    if CONTENT_TYPE_GRIDS in accept.lower():
        wire = response.to_wire()
        wire.pop("result", None)
        grids: List[np.ndarray] = []
        if response.result is not None:
            grids.append(np.asarray(response.result, dtype=np.float64))
        prefix, buffers = encode_grid_payload(wire, grids)
        return CONTENT_TYPE_GRIDS, prefix, buffers
    payload = json.dumps(response.to_wire()).encode("utf-8")
    return CONTENT_TYPE_JSON, payload, []


async def _read_body(reader: asyncio.StreamReader,
                     headers: Dict[str, str],
                     max_request_bytes: int) -> bytes:
    """Read one request body (Content-Length or chunked), bounded."""
    encoding = headers.get("transfer-encoding", "").lower()
    if "chunked" in encoding:
        chunks: List[bytes] = []
        total = 0
        while True:
            size_line = await reader.readline()
            try:
                size = int(size_line.split(b";")[0].strip() or b"0", 16)
            except ValueError:
                raise _HTTPError(400, BAD_REQUEST, "malformed chunk size",
                                 close=True)
            if size == 0:
                while True:  # trailers, then the final blank line
                    trailer = await reader.readline()
                    if trailer in (b"\r\n", b"\n", b""):
                        break
                return b"".join(chunks)
            total += size
            if total > max_request_bytes:
                raise _HTTPError(
                    413, REQUEST_TOO_LARGE,
                    f"request body exceeds {max_request_bytes} bytes",
                    close=True,
                )
            chunks.append(await reader.readexactly(size))
            await reader.readexactly(2)  # the chunk's trailing CRLF
    length = int(headers.get("content-length", "0") or "0")
    if length > max_request_bytes:
        raise _HTTPError(
            413, REQUEST_TOO_LARGE,
            f"request body exceeds {max_request_bytes} bytes", close=True,
        )
    if length <= 0:
        return b""
    return await reader.readexactly(length)


def _authorized(headers: Dict[str, str], auth_key: Optional[str]) -> bool:
    if auth_key is None:
        return True
    supplied = headers.get("authorization", "")
    if supplied.lower().startswith("bearer "):
        supplied = supplied[7:].strip()
    else:
        supplied = headers.get("x-repro-auth", "")
    return hmac.compare_digest(supplied, auth_key)


async def serve_http(
    service,
    host: str = "127.0.0.1",
    port: int = 7458,
    auth_key: Optional[str] = None,
    max_request_bytes: int = 32 * 1024 * 1024,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    on_served=None,
) -> "asyncio.AbstractServer":
    """Expose a started service as the ``/v1/*`` HTTP endpoint.

    Connections are keep-alive: one client can pump many requests through
    one socket (the client library's pooling counterpart).  Responses are
    written prefix-then-buffers in bounded chunks, so large binary results
    stream instead of being joined into one object.  ``on_served`` is
    called after each answered execute/iterate request — ``repro serve``
    points it at the shared ``--max-requests`` gate.
    """

    async def write_response(writer: asyncio.StreamWriter, status: int,
                             content_type: str, prefix: bytes,
                             buffers: List[memoryview],
                             extra_headers: Optional[Dict[str, str]] = None,
                             close: bool = False) -> None:
        reason = _REASONS.get(status, "OK")
        headers = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {payload_length(prefix, buffers)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        for name, value in (extra_headers or {}).items():
            headers.append(f"{name}: {value}")
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode("latin-1"))
        writer.write(prefix)
        await writer.drain()
        for buffer in buffers:
            for start in range(0, buffer.nbytes, chunk_bytes):
                writer.write(bytes(buffer[start:start + chunk_bytes]))
                await writer.drain()
        _HTTP_REQUESTS_TOTAL.inc(label=f"{status // 100}xx")

    async def write_error(writer: asyncio.StreamWriter, status: int,
                          code: str, message: str, accept: str,
                          close: bool = False) -> None:
        shaped = ExecutionResponse(
            result=None, benchmark=None, digest="", variant="",
            plan_source="", batch_size=0, batched=False, latency_s=0.0,
            error=message, code=code,
        )
        content_type, prefix, buffers = response_body(shaped, accept)
        await write_response(writer, status, content_type, prefix, buffers,
                             close=close)

    async def write_job_json(writer: asyncio.StreamWriter, status: int,
                             payload: Dict[str, object],
                             close: bool = False) -> None:
        body = json.dumps(payload).encode("utf-8") + b"\n"
        await write_response(writer, status, CONTENT_TYPE_JSON, body, [],
                             close=close)

    async def handle_jobs(method: str, path: str, headers: Dict[str, str],
                          body: bytes, writer: asyncio.StreamWriter,
                          accept: str, keep_alive: bool) -> None:
        """The durable-jobs surface.

        ``POST /v1/jobs`` submits (same body forms as ``/v1/iterate``,
        plus ``job_key`` — the idempotency token — and an optional
        ``checkpoint_every``); ``GET /v1/jobs`` lists, ``GET
        /v1/jobs/<id>`` polls status, ``GET /v1/jobs/<id>/result``
        fetches the final grid (binary when ``Accept`` names the grid
        framing), ``DELETE /v1/jobs/<id>`` cancels at the next segment
        boundary.  Job manager calls hold a lock and may touch disk, so
        every one runs off the event loop.
        """
        loop = asyncio.get_running_loop()
        close = not keep_alive
        parts = [part for part in path.split("/") if part]  # v1/jobs/...
        try:
            if len(parts) == 2:
                if method == "POST":
                    request, meta = await loop.run_in_executor(
                        None, request_and_meta_from_body,
                        headers.get("content-type", ""), body,
                    )
                    checkpoint_every = meta.get("checkpoint_every")
                    job = await loop.run_in_executor(
                        None, lambda: service.jobs.submit(
                            request,
                            job_key=(str(meta["job_key"])
                                     if meta.get("job_key") else None),
                            checkpoint_every=(int(checkpoint_every)
                                              if checkpoint_every else None),
                        )
                    )
                    await write_job_json(writer, 200,
                                         {"ok": True, "job": job},
                                         close=close)
                    return
                if method == "GET":
                    jobs = await loop.run_in_executor(
                        None, service.jobs.list_jobs)
                    await write_job_json(writer, 200,
                                         {"ok": True, "jobs": jobs},
                                         close=close)
                    return
                await write_error(writer, 405, BAD_REQUEST,
                                  "/v1/jobs supports POST and GET", accept)
                return
            job_id = parts[2]
            if len(parts) == 3 and method == "GET":
                job = await loop.run_in_executor(None, service.jobs.status,
                                                 job_id)
                await write_job_json(writer, 200, {"ok": True, "job": job},
                                     close=close)
                return
            if len(parts) == 3 and method == "DELETE":
                job = await loop.run_in_executor(None, service.jobs.cancel,
                                                 job_id)
                await write_job_json(writer, 200, {"ok": True, "job": job},
                                     close=close)
                return
            if len(parts) == 4 and parts[3] == "result" and method == "GET":
                try:
                    job, result = await loop.run_in_executor(
                        None, service.jobs.result, job_id)
                except JobNotFound:
                    raise
                except JobError as error:
                    # Not completed (yet): a conflict with the job's
                    # current state, not a malformed request.
                    await write_error(writer, 409, CANCELLED, str(error),
                                      accept)
                    return
                if CONTENT_TYPE_GRIDS in accept.lower():
                    prefix, buffers = await loop.run_in_executor(
                        None, encode_grid_payload,
                        {"ok": True, "job": job},
                        [np.asarray(result, dtype=np.float64)],
                    )
                    await write_response(writer, 200, CONTENT_TYPE_GRIDS,
                                         prefix, buffers, close=close)
                    return
                payload = await loop.run_in_executor(
                    None, lambda: {"ok": True, "job": job,
                                   "result": np.asarray(result).tolist()})
                await write_job_json(writer, 200, payload, close=close)
                return
            await write_error(writer, 404, NOT_FOUND,
                              f"unknown job route {path!r}", accept)
        except _HTTPError as error:
            await write_error(writer, error.status, error.code, str(error),
                              accept)
        except JobNotFound as error:
            await write_error(writer, 404, NOT_FOUND, str(error), accept)
        except JobError as error:
            await write_error(writer, 400, BAD_REQUEST, str(error), accept)
        except Exception as error:  # noqa: BLE001 - malformed job payload
            await write_error(writer, 400, BAD_REQUEST,
                              f"{type(error).__name__}: {error}", accept)

    async def handle_one(reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> bool:
        """Serve one request; returns False when the connection should close."""
        request_line = await reader.readline()
        if not request_line:
            return False
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return False
        method, target = parts[0], parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        accept = headers.get("accept", "")
        keep_alive = headers.get("connection", "").lower() != "close"
        path = target.split("?")[0].rstrip("/")
        if method == "GET" and path == "/healthz":
            body = json.dumps({"status": "ok"}).encode("utf-8") + b"\n"
            await write_response(writer, 200, CONTENT_TYPE_JSON, body, [],
                                 close=not keep_alive)
            return keep_alive
        if path == "/v1/jobs" or path.startswith("/v1/jobs/"):
            try:
                body = await _read_body(reader, headers, max_request_bytes)
            except _HTTPError as error:
                if error.code == REQUEST_TOO_LARGE:
                    _REJECTS_TOTAL.inc(label="too_large")
                await write_error(writer, error.status, error.code,
                                  str(error), accept, close=True)
                return False
            if not _authorized(headers, auth_key):
                _REJECTS_TOTAL.inc(label="unauthorized")
                await write_error(writer, 401, UNAUTHORIZED,
                                  "missing or invalid auth key", accept)
                return keep_alive
            await handle_jobs(method, path, headers, body, writer, accept,
                              keep_alive)
            return keep_alive
        if path not in ("/v1/execute", "/v1/iterate"):
            await write_error(writer, 404, BAD_REQUEST,
                              f"unknown path {path!r}", accept)
            return keep_alive
        if method != "POST":
            await write_error(writer, 405, BAD_REQUEST,
                              "execute/iterate require POST", accept)
            return keep_alive
        try:
            body = await _read_body(reader, headers, max_request_bytes)
        except _HTTPError as error:
            if error.code == REQUEST_TOO_LARGE:
                _REJECTS_TOTAL.inc(label="too_large")
            # The unread body is still in the socket; close to resync.
            await write_error(writer, error.status, error.code, str(error),
                              accept, close=True)
            return False
        if not _authorized(headers, auth_key):
            _REJECTS_TOTAL.inc(label="unauthorized")
            await write_error(writer, 401, UNAUTHORIZED,
                              "missing or invalid auth key", accept)
            return keep_alive
        loop = asyncio.get_running_loop()
        try:
            # Body decode can be arbitrarily large; keep it off the loop so
            # one fat request does not stall the batch window.
            request = await loop.run_in_executor(
                None, request_from_body, headers.get("content-type", ""),
                body, path == "/v1/iterate",
            )
        except _HTTPError as error:
            await write_error(writer, error.status, error.code, str(error),
                              accept)
            return keep_alive
        except Exception as error:  # noqa: BLE001 - malformed request payload
            await write_error(writer, 400, BAD_REQUEST,
                              f"{type(error).__name__}: {error}", accept)
            return keep_alive
        response = await service.submit(request)
        content_type, prefix, buffers = await loop.run_in_executor(
            None, response_body, response, accept
        )
        extra: Dict[str, str] = {}
        if response.retry_after_ms is not None:
            extra["Retry-After"] = str(
                max(1, int(round(response.retry_after_ms / 1e3)))
            )
        await write_response(writer, _status_for(response), content_type,
                             prefix, buffers, extra_headers=extra,
                             close=not keep_alive)
        if on_served is not None:
            on_served()
        return keep_alive

    async def handle(reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        try:
            while await handle_one(reader, writer):
                pass
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError, ValueError):
            pass
        except asyncio.CancelledError:
            # Loop teardown while parked on readline (keep-alive idle):
            # close the connection quietly instead of logging a cancel.
            pass
        except Exception:  # noqa: BLE001 - one connection must not leak up
            log.exception("http connection handler failed")
        finally:
            try:
                writer.close()
            except Exception:  # noqa: BLE001 - teardown must not raise
                pass

    # The stream limit only bounds readline/readuntil (request/header/chunk
    # lines); bodies are bounded explicitly in _read_body.
    return await asyncio.start_server(handle, host, port, limit=1024 * 1024)


__all__ = [
    "request_and_meta_from_body",
    "request_from_body",
    "response_body",
    "serve_http",
]
