"""Per-sweep generic path vs allocation-free plan path, over real timesteps.

This experiment quantifies what execution plans buy on iterative workloads:
every requested benchmark runs ``steps`` timesteps twice —

* **per-sweep**: the pre-plan steady state, one full generic ``run`` per
  timestep (compilation-cache lookup, closure traversal, fresh temporaries),
  feeding outputs back per the benchmark's carry specification;
* **plan**: the same loop through
  :meth:`~repro.backend.plan.ExecutionPlan.iterate` — pooled buffers,
  ``out=`` tape replays, double-buffered output ping-pong.

Both paths are warmed first, timings take the best of ``repeats`` runs, the
final grids are required to be **bit-identical**, and the plan's steady loop
is additionally measured for allocations (net ``tracemalloc`` delta across
the timed steps, plus the plan's own buffer-pool accounting).  ``python -m
repro bench-plans`` writes the rows to ``BENCH_plans.json``; the CI plan
smoke job asserts the Hotspot2D row's speedup.
"""

from __future__ import annotations

import json
import time
import tracemalloc
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..apps.suite import ITERATIVE_BENCHMARKS, get_benchmark
from ..backend.base import NumpyBackend
from ..backend.plan import iterate_generic

#: Grid sizes for the timing comparison (per dimensionality).  Sized like a
#: serving-tier request: large enough that NumPy sweeps dominate Python
#: dispatch, small enough that 64-step runs stay affordable everywhere.
PLAN_BENCH_SHAPES: Dict[int, Tuple[int, ...]] = {2: (256, 256), 3: (16, 48, 48)}


@dataclass
class PlanTiming:
    """One benchmark's per-sweep vs plan steady-state comparison."""

    benchmark: str
    shape: Tuple[int, ...]
    steps: int
    per_sweep_s: float          # generic path, whole T-step loop
    plan_steady_s: float        # plan path, whole T-step loop (warm tapes)
    plan_build_s: float         # first iterate: captures + buffer allocation
    speedup: float
    per_step_us: float          # plan steady cost per timestep
    tapes: int                  # captured bindings (prologue + ping-pong cycle)
    allocations_per_step: float  # net tracemalloc blocks per steady step
    pool_allocations: int       # fresh pool buffers during the timed loop
    results_match: bool         # final grids bit-identical across both paths


def run_plan_bench(
    benchmarks: Optional[Sequence[str]] = None,
    steps: int = 64,
    shapes: Optional[Dict[int, Tuple[int, ...]]] = None,
    repeats: int = 3,
    seed: int = 0,
) -> List[PlanTiming]:
    """Time every requested benchmark on both iterative paths."""
    keys = list(benchmarks or ITERATIVE_BENCHMARKS)
    shapes = dict(shapes or PLAN_BENCH_SHAPES)
    repeats = max(1, repeats)
    backend = NumpyBackend()

    rows: List[PlanTiming] = []
    for key in keys:
        bench = get_benchmark(key)
        shape = shapes[bench.ndims]
        inputs = bench.make_inputs(shape, seed)
        program = bench.build_program()
        carry = bench.carry_spec()

        plan = backend.plan(program, inputs)
        build_started = time.perf_counter()
        plan.iterate(inputs, max(steps, 8), carry=carry)  # capture all tapes
        plan_build_s = time.perf_counter() - build_started

        iterate_generic(backend, program, inputs, 2, carry=carry)  # warm cache
        per_sweep_s = min(
            _timed(lambda: iterate_generic(backend, program, inputs, steps,
                                           carry=carry))
            for _ in range(repeats)
        )
        plan_steady_s = min(
            _timed(lambda: plan.iterate(inputs, steps, carry=carry))
            for _ in range(repeats)
        )

        reference = iterate_generic(backend, program, inputs, steps, carry=carry)
        produced = plan.iterate(inputs, steps, carry=carry)
        results_match = bool(np.array_equal(reference, produced))

        allocations = _steady_allocations(plan, inputs, steps, carry)
        pool_before = plan._pool.allocations
        plan.iterate(inputs, steps, carry=carry)
        pool_allocations = plan._pool.allocations - pool_before

        rows.append(
            PlanTiming(
                benchmark=bench.name,
                shape=tuple(shape),
                steps=steps,
                per_sweep_s=per_sweep_s,
                plan_steady_s=plan_steady_s,
                plan_build_s=plan_build_s,
                speedup=per_sweep_s / plan_steady_s,
                per_step_us=plan_steady_s / steps * 1e6,
                tapes=plan.stats()["tapes"],
                allocations_per_step=allocations / steps,
                pool_allocations=pool_allocations,
                results_match=results_match,
            )
        )
    return rows


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _steady_allocations(plan, inputs, steps: int, carry) -> int:
    """Net traced memory blocks allocated across a warm ``steps``-step loop.

    The tape replays write only into pooled buffers, so the steady loop's
    net allocation count stays at (small-constant) Python-object noise —
    this is the number the zero-allocation test asserts a bound on.
    """
    plan.iterate(inputs, 2, carry=carry)  # ensure tapes + result buffer exist
    tracemalloc.start()
    try:
        before = tracemalloc.take_snapshot()
        plan.iterate(inputs, steps, carry=carry, copy=False)
        after = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    delta = after.compare_to(before, "filename")
    return max(0, sum(entry.count_diff for entry in delta))


def format_plan_bench(rows: Sequence[PlanTiming]) -> str:
    header = (
        f"{'benchmark':<12} {'shape':<12} {'steps':>5} {'per-sweep':>11} "
        f"{'plan':>9} {'speedup':>8} {'µs/step':>9} {'tapes':>5} "
        f"{'alloc/step':>10} {'match':>6}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        shape = "×".join(str(extent) for extent in row.shape)
        lines.append(
            f"{row.benchmark:<12} {shape:<12} {row.steps:>5} "
            f"{row.per_sweep_s:>9.4f} s {row.plan_steady_s:>7.4f} s "
            f"{row.speedup:>7.2f}x {row.per_step_us:>9.1f} {row.tapes:>5} "
            f"{row.allocations_per_step:>10.2f} "
            f"{'yes' if row.results_match else 'NO':>6}"
        )
    return "\n".join(lines)


def write_plan_bench(rows: Sequence[PlanTiming], path: str) -> None:
    payload = {
        "description": (
            "Iterative steady-state comparison: one generic run() per "
            "timestep vs the double-buffered, buffer-pooled execution-plan "
            "loop (bit-identical results required)"
        ),
        "rows": [asdict(row) for row in rows],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


__all__ = [
    "PLAN_BENCH_SHAPES",
    "PlanTiming",
    "format_plan_bench",
    "run_plan_bench",
    "write_plan_bench",
]
