"""Per-sweep generic path vs plan path vs fused+tiled plan, over timesteps.

This experiment quantifies what execution plans — and the tape optimizer on
top of them — buy on iterative workloads: every requested benchmark runs
``steps`` timesteps three ways —

* **per-sweep**: the pre-plan steady state, one full generic ``run`` per
  timestep (compilation-cache lookup, closure traversal, fresh temporaries),
  feeding outputs back per the benchmark's carry specification;
* **plan**: the same loop through
  :meth:`~repro.backend.plan.ExecutionPlan.iterate` with the tape optimizer
  disabled — pooled buffers, ``out=`` tape replays, double-buffered output
  ping-pong;
* **fused**: the optimized tape — ufunc-fused regions (halo gathers
  included) replayed tile by tile over cache-blocked output slices, with
  the tile shape picked by a warm-replay search over
  :func:`~repro.tuning.parameters.fuse_tile_candidates` (or fixed via
  ``tile``);
* **parallel** (``--workers N``, optional): the same fused tape with its
  independent tile chunks dispatched across the persistent replay worker
  pool (``parallel_workers=N``) — the row's fourth timing, also required
  bit-identical, quantifying what multi-threaded tiled replay buys on
  this machine.

All paths are warmed first, timings take the best of ``repeats`` runs, the
final grids are required to be **bit-identical** across all three, and the
fused plan's steady loop is additionally measured for allocations (net
``tracemalloc`` delta across the timed steps, plus the plan's own
buffer-pool accounting).  ``python -m repro bench-plans`` writes the rows
to ``BENCH_plans.json``; ``--compare`` diffs a run against a recorded
baseline and fails on steady-state regressions; the CI plan/fuse smoke
jobs assert the Hotspot2D row's speedup and that its tape actually fused.
"""

from __future__ import annotations

import json
import time
import tracemalloc
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..apps.suite import ITERATIVE_BENCHMARKS, get_benchmark
from ..backend.base import NumpyBackend
from ..backend.plan import iterate_generic

#: Grid sizes for the timing comparison (per dimensionality).  Sized so the
#: working set of a whole unfused tape clearly exceeds the last-level cache
#: — the regime the tape optimizer targets (1024² Hotspot2D is the paper's
#: own large 2-D configuration).
PLAN_BENCH_SHAPES: Dict[int, Tuple[int, ...]] = {2: (1024, 1024),
                                                 3: (32, 96, 96)}

#: Steady-state regression threshold for ``repro bench-plans --compare``.
COMPARE_THRESHOLD = 0.25


@dataclass
class PlanTiming:
    """One benchmark's per-sweep vs plan vs fused-plan comparison."""

    benchmark: str
    shape: Tuple[int, ...]
    steps: int
    per_sweep_s: float          # generic path, whole T-step loop
    plan_steady_s: float        # unfused plan path, whole T-step loop
    plan_build_s: float         # first iterate: captures + buffer allocation
    speedup: float              # per-sweep / unfused plan
    per_step_us: float          # unfused plan steady cost per timestep
    fused_steady_s: float       # optimized (fused + tiled) plan, whole loop
    fused_speedup: float        # unfused plan / fused plan
    fused_per_step_us: float    # fused plan steady cost per timestep
    fused_regions: int          # fused regions across the plan's tapes
    fused_pads: int             # halo gathers folded into those regions
    tile: Optional[Tuple]       # winning tile spec (None = heuristic)
    tapes: int                  # captured bindings (prologue + cycle)
    allocations_per_step: float  # net tracemalloc blocks per steady step
    pool_allocations: int       # fresh pool buffers during the timed loop
    results_match: bool         # every timed path's final grid bit-identical
    parallel_workers: int = 1   # replay workers the parallel timing used
    parallel_steady_s: Optional[float] = None  # parallel fused plan, whole loop
    parallel_speedup: Optional[float] = None   # fused serial / parallel


def run_plan_bench(
    benchmarks: Optional[Sequence[str]] = None,
    steps: int = 64,
    shapes: Optional[Dict[int, Tuple[int, ...]]] = None,
    repeats: int = 3,
    seed: int = 0,
    tile: object = "search",
    workers: int = 1,
) -> List[PlanTiming]:
    """Time every requested benchmark on all three iterative paths.

    ``tile`` selects the fused plan's tile shape: ``"search"`` (default)
    times warm replays across the standard candidates and keeps the winner
    per benchmark; anything else is passed through as an explicit spec.
    ``workers > 1`` adds a fourth timing per row: the fused plan replayed
    with that many parallel tile workers, bit-identity folded into
    ``results_match``.
    """
    keys = list(benchmarks or ITERATIVE_BENCHMARKS)
    shapes = dict(shapes or PLAN_BENCH_SHAPES)
    repeats = max(1, repeats)
    workers = max(1, int(workers))
    backend = NumpyBackend()

    rows: List[PlanTiming] = []
    for key in keys:
        bench = get_benchmark(key)
        shape = shapes[bench.ndims]
        inputs = bench.make_inputs(shape, seed)
        program = bench.build_program()
        carry = bench.carry_spec()

        plan = backend.plan(program, inputs, tile_shape=False)
        build_started = time.perf_counter()
        plan.iterate(inputs, max(steps, 8), carry=carry)  # capture all tapes
        plan_build_s = time.perf_counter() - build_started

        tile_spec = tile
        if tile == "search":
            tile_spec = _search_tile(program, inputs, bench.ndims, carry)
        fused = backend.plan(program, inputs, tile_shape=tile_spec)
        fused.iterate(inputs, max(steps, 8), carry=carry)  # warm fused tapes

        iterate_generic(backend, program, inputs, 2, carry=carry)  # warm cache
        per_sweep_s = min(
            _timed(lambda: iterate_generic(backend, program, inputs, steps,
                                           carry=carry))
            for _ in range(repeats)
        )
        plan_steady_s = min(
            _timed(lambda: plan.iterate(inputs, steps, carry=carry))
            for _ in range(repeats)
        )
        fused_steady_s = min(
            _timed(lambda: fused.iterate(inputs, steps, carry=carry))
            for _ in range(repeats)
        )

        parallel_steady_s = None
        parallel = None
        if workers > 1:
            parallel = backend.plan(program, inputs, tile_shape=tile_spec,
                                    parallel_workers=workers)
            parallel.iterate(inputs, max(steps, 8), carry=carry)  # warm
            parallel_steady_s = min(
                _timed(lambda: parallel.iterate(inputs, steps, carry=carry))
                for _ in range(repeats)
            )

        reference = iterate_generic(backend, program, inputs, steps, carry=carry)
        produced = plan.iterate(inputs, steps, carry=carry)
        optimized = fused.iterate(inputs, steps, carry=carry)
        results_match = bool(
            np.array_equal(reference, produced)
            and np.array_equal(reference, optimized)
        )
        if parallel is not None:
            results_match = results_match and bool(np.array_equal(
                reference, parallel.iterate(inputs, steps, carry=carry)
            ))

        allocations = _steady_allocations(fused, inputs, steps, carry)
        pool_before = fused._pool.allocations
        fused.iterate(inputs, steps, carry=carry)
        pool_allocations = fused._pool.allocations - pool_before
        fused_stats = fused.stats()

        rows.append(
            PlanTiming(
                benchmark=bench.name,
                shape=tuple(shape),
                steps=steps,
                per_sweep_s=per_sweep_s,
                plan_steady_s=plan_steady_s,
                plan_build_s=plan_build_s,
                speedup=per_sweep_s / plan_steady_s,
                per_step_us=plan_steady_s / steps * 1e6,
                fused_steady_s=fused_steady_s,
                fused_speedup=plan_steady_s / fused_steady_s,
                fused_per_step_us=fused_steady_s / steps * 1e6,
                fused_regions=fused_stats["fused_regions"],
                fused_pads=fused_stats["fused_pads"],
                tile=fused_stats["tile_shape"],
                tapes=fused_stats["tapes"],
                allocations_per_step=allocations / steps,
                pool_allocations=pool_allocations,
                results_match=results_match,
                parallel_workers=workers,
                parallel_steady_s=parallel_steady_s,
                parallel_speedup=(
                    fused_steady_s / parallel_steady_s
                    if parallel_steady_s else None
                ),
            )
        )
    return rows


def _search_tile(program, inputs, ndims: int, carry, steps: int = 8):
    """The fastest tile spec for the warm double-buffered iterate loop.

    Times each candidate with the same loop the benchmark reports (short,
    warm ``iterate`` replays) on a throwaway plan whose buffers are released
    right after, so the search neither skews the timed runs' memory
    footprint nor leaks pool buffers.
    """
    from ..backend.plan import compile_plan
    from ..tuning.parameters import fuse_tile_candidates

    best_cost = float("inf")
    best_spec = None
    for spec in fuse_tile_candidates(ndims):
        if spec is False:
            continue
        plan = compile_plan(program, inputs, tile_shape=spec)
        try:
            plan.iterate(inputs, max(4, steps // 2), carry=carry)  # warm
            cost = min(
                _timed(lambda: plan.iterate(inputs, steps, carry=carry,
                                            copy=False))
                for _ in range(2)
            )
        finally:
            plan.release()
        if cost < best_cost:
            best_cost, best_spec = cost, spec
    return best_spec


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _steady_allocations(plan, inputs, steps: int, carry) -> int:
    """Net traced memory blocks allocated across a warm ``steps``-step loop.

    The tape replays (fused or not) write only into pooled buffers and
    pre-resolved views, so the steady loop's net allocation count stays at
    (small-constant) Python-object noise — this is the number the
    zero-allocation test asserts a bound on.
    """
    plan.iterate(inputs, 2, carry=carry)  # ensure tapes + result buffer exist
    tracemalloc.start()
    try:
        before = tracemalloc.take_snapshot()
        plan.iterate(inputs, steps, carry=carry, copy=False)
        after = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    delta = after.compare_to(before, "filename")
    return max(0, sum(entry.count_diff for entry in delta))


def format_plan_bench(rows: Sequence[PlanTiming]) -> str:
    parallel = any(row.parallel_steady_s is not None for row in rows)
    header = (
        f"{'benchmark':<12} {'shape':<12} {'steps':>5} {'per-sweep':>11} "
        f"{'plan':>9} {'fused':>9} {'plan-x':>7} {'fuse-x':>7} "
        f"{'µs/step':>9} {'regions':>7} {'tile':<16} {'match':>6}"
    )
    if parallel:
        header += f" {'par':>9} {'par-x':>7}"
    lines = [header, "-" * len(header)]
    for row in rows:
        shape = "×".join(str(extent) for extent in row.shape)
        tile = "auto" if row.tile is None else (
            "off" if row.tile is False else
            "×".join("*" if e is None else str(e) for e in row.tile))
        line = (
            f"{row.benchmark:<12} {shape:<12} {row.steps:>5} "
            f"{row.per_sweep_s:>9.4f} s {row.plan_steady_s:>7.4f} s "
            f"{row.fused_steady_s:>7.4f} s {row.speedup:>6.2f}x "
            f"{row.fused_speedup:>6.2f}x {row.fused_per_step_us:>9.1f} "
            f"{row.fused_regions:>7} {tile:<16} "
            f"{'yes' if row.results_match else 'NO':>6}"
        )
        if parallel:
            if row.parallel_steady_s is not None:
                line += (f" {row.parallel_steady_s:>7.4f} s "
                         f"{row.parallel_speedup:>6.2f}x")
            else:
                line += f" {'-':>9} {'-':>7}"
        lines.append(line)
    if parallel:
        workers = max(row.parallel_workers for row in rows)
        lines.append(f"(par = fused plan replayed with {workers} tile "
                     "workers; par-x vs serial fused)")
    return "\n".join(lines)


def write_plan_bench(rows: Sequence[PlanTiming], path: str) -> None:
    payload = {
        "description": (
            "Iterative steady-state comparison: one generic run() per "
            "timestep vs the buffer-pooled execution-plan loop vs the "
            "tape-optimized (ufunc-fused, cache-block tiled) plan loop "
            "(bit-identical results required on every path); parallel_* "
            "fields time the fused replay across N worker threads when "
            "the run was invoked with --workers N (speedups require a "
            "multi-core recording machine — on a single core the "
            "parallel column can only tie or lose)"
        ),
        "rows": [asdict(row) for row in rows],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def compare_plan_bench(rows: Sequence[PlanTiming], baseline_path: str,
                       threshold: float = COMPARE_THRESHOLD):
    """Diff fresh rows against a recorded ``BENCH_plans.json``.

    Compares the steady-state serving cost (``fused_steady_s`` when both
    sides have it, else ``plan_steady_s``) per benchmark and flags any row
    slower than ``baseline × (1 + threshold)``.  Rows whose fused-region
    count or winning tile spec changed against the baseline additionally
    get a *non-blocking* ``note:`` line — an optimizer-behaviour drift is
    worth a human look even when the timing stayed within threshold, but
    it is machine- and search-noise-dependent, so it never fails the run
    on its own.  Returns ``(report_text, regressions)`` — a non-empty
    ``regressions`` list means the caller should exit non-zero.
    """
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    recorded = {row["benchmark"]: row for row in baseline.get("rows", [])}
    lines = [f"steady-state vs {baseline_path} "
             f"(fail above +{threshold * 100:.0f}%):"]
    regressions: List[str] = []
    for row in rows:
        old = recorded.get(row.benchmark)
        if old is None:
            lines.append(f"  {row.benchmark:<12} no baseline row — skipped")
            continue
        if tuple(old.get("shape", ())) != tuple(row.shape) \
                or old.get("steps") != row.steps:
            lines.append(f"  {row.benchmark:<12} baseline ran "
                         f"{old.get('shape')}×{old.get('steps')} steps — "
                         "not comparable, skipped")
            continue
        old_steady = old.get("fused_steady_s") or old.get("plan_steady_s")
        new_steady = row.fused_steady_s if old.get("fused_steady_s") \
            else row.plan_steady_s
        delta = new_steady / old_steady - 1.0
        verdict = "REGRESSION" if delta > threshold else "ok"
        lines.append(
            f"  {row.benchmark:<12} {old_steady:.4f}s → {new_steady:.4f}s "
            f"({delta:+.1%}) {verdict}"
        )
        if delta > threshold:
            regressions.append(
                f"{row.benchmark}: steady-state {delta:+.1%} over baseline"
            )
        old_regions = old.get("fused_regions")
        if old_regions is not None and old_regions != row.fused_regions:
            lines.append(
                f"    note: fused regions {old_regions} → "
                f"{row.fused_regions} (non-blocking)"
            )
        if "tile" in old and _tile_text(old.get("tile")) != _tile_text(row.tile):
            lines.append(
                f"    note: winning tile {_tile_text(old.get('tile'))} → "
                f"{_tile_text(row.tile)} (non-blocking)"
            )
    return "\n".join(lines), regressions


def _tile_text(tile: object) -> str:
    """Canonical rendering of a tile spec for baseline comparison.

    Baseline rows come back from JSON where tuples became lists and
    ``None``-extents stayed ``None``; normalising both sides to one string
    keeps the drift note about real tile changes, not encoding changes.
    """
    if tile is None:
        return "auto"
    if tile is False:
        return "off"
    if isinstance(tile, (list, tuple)):
        return "×".join("*" if extent is None else str(extent)
                        for extent in tile)
    return str(tile)


__all__ = [
    "COMPARE_THRESHOLD",
    "PLAN_BENCH_SHAPES",
    "PlanTiming",
    "compare_plan_bench",
    "format_plan_bench",
    "run_plan_bench",
    "write_plan_bench",
]
