"""Interpreter-vs-compiled execution timing for the Figure-7 pipeline apps.

This experiment quantifies what the compiled NumPy backend buys: it runs
every requested benchmark's Lift expression through both execution backends
on the same inputs, verifies the results agree (``rtol=1e-6``), and reports
wall-clock times plus speedups.  ``python -m repro bench-backend`` writes the
rows to ``BENCH_backend.json``.

The grids are deliberately modest — the interpreter is the baseline being
measured, and at the paper's input sizes it would take hours per run.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..apps.suite import FIGURE7_BENCHMARKS, get_benchmark
from ..backend import get_backend

#: Grid sizes used for the timing comparison (per dimensionality).
BENCH_SHAPES: Dict[int, Tuple[int, ...]] = {2: (128, 128), 3: (16, 24, 24)}


@dataclass
class BackendTiming:
    """One benchmark's interpreter-vs-compiled timing comparison."""

    benchmark: str
    shape: Tuple[int, ...]
    interpreter_s: float
    compile_s: float
    compiled_s: float
    speedup: float
    max_abs_error: float
    results_match: bool


def _best_of(fn, repeats: int) -> float:
    return min(_timed(fn) for _ in range(repeats))


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def run_backend_bench(
    benchmarks: Optional[Sequence[str]] = None,
    shapes: Optional[Dict[int, Tuple[int, ...]]] = None,
    repeats: int = 3,
    seed: int = 0,
) -> List[BackendTiming]:
    """Time every requested benchmark on both backends and cross-check them."""
    keys = list(benchmarks or FIGURE7_BENCHMARKS)
    shapes = dict(shapes or BENCH_SHAPES)
    repeats = max(1, repeats)
    interpreter = get_backend("interpreter")
    compiled = get_backend("numpy")

    rows: List[BackendTiming] = []
    for key in keys:
        bench = get_benchmark(key)
        shape = shapes[bench.ndims]
        inputs = bench.make_inputs(shape, seed)
        program = bench.build_program()

        interp_result: List[np.ndarray] = []
        interpreter_s = _timed(
            lambda: interp_result.append(interpreter.run(program, inputs))
        )

        # First compiled run pays compilation; afterwards the cache serves it.
        compiled_result: List[np.ndarray] = []
        first_s = _timed(
            lambda: compiled_result.append(compiled.run(program, inputs))
        )
        compiled_s = _best_of(lambda: compiled.run(program, inputs), repeats)

        expected = np.asarray(interp_result[0])
        produced = np.asarray(compiled_result[0])
        max_abs_error = float(np.max(np.abs(produced - expected)))
        rows.append(
            BackendTiming(
                benchmark=bench.name,
                shape=tuple(shape),
                interpreter_s=interpreter_s,
                compile_s=max(first_s - compiled_s, 0.0),
                compiled_s=compiled_s,
                speedup=interpreter_s / compiled_s,
                max_abs_error=max_abs_error,
                results_match=bool(
                    np.allclose(produced, expected, rtol=1e-6, atol=0.0)
                ),
            )
        )
    return rows


def format_backend_bench(rows: Sequence[BackendTiming]) -> str:
    header = (
        f"{'benchmark':<12} {'shape':<14} {'interp [s]':>11} "
        f"{'compiled [s]':>13} {'speedup':>9} {'match':>6}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        shape = "×".join(str(extent) for extent in row.shape)
        lines.append(
            f"{row.benchmark:<12} {shape:<14} {row.interpreter_s:>11.4f} "
            f"{row.compiled_s:>13.6f} {row.speedup:>8.0f}x "
            f"{'yes' if row.results_match else 'NO':>6}"
        )
    return "\n".join(lines)


def write_backend_bench(rows: Sequence[BackendTiming], path: str) -> None:
    payload = {
        "description": (
            "Wall-clock comparison of the reference interpreter vs the "
            "compiled NumPy backend on the Figure-7 pipeline applications"
        ),
        "rows": [asdict(row) for row in rows],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


__all__ = [
    "BENCH_SHAPES",
    "BackendTiming",
    "format_backend_bench",
    "run_backend_bench",
    "write_backend_bench",
]
