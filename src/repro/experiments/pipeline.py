"""The shared experiment pipeline: macro exploration → parameter tuning → simulation.

This mirrors the paper's methodology (§6):

1. the macro rewrites produce several low-level Lift expressions per benchmark
   (untiled, and overlapped tiling with several tile sizes / local-memory
   choices);
2. each variant's numerical parameters (work-group sizes, work per thread) are
   tuned by the ATF-style tuner against the virtual device;
3. the fastest variant+configuration wins and is reported, just like the
   best-found kernel in the paper.

The same tuner and virtual device are used for the PPCG baseline, matching the
paper's "both approaches auto-tune for up to three hours" setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..apps.base import StencilBenchmark
from ..baselines.ppcg import PPCGCompiler, ppcg_parameter_space
from ..baselines.reference_kernels import reference_profile
from ..engine.worker import VALIDATION_SHAPES, kernel_config_from, validation_shape
from ..rewriting.exploration import ExplorationResult, explore
from ..rewriting.strategies import LoweredProgram
from ..runtime.simulator.device import DeviceModel
from ..runtime.simulator.executor import SimulationResult, VirtualDevice
from ..runtime.simulator.kernel_model import ProblemInstance, build_profile
from ..tuning.parameters import Parameter, ParameterSpace, opencl_constraints
from ..tuning.tuner import AutoTuner

#: Tile widths considered by the macro exploration (before validity filtering).
EXPLORATION_TILE_SIZES = (4, 6, 8, 10, 18, 34, 66)

#: Work-group extents considered per dimension.
WORKGROUP_CHOICES = (1, 2, 4, 8, 16, 32, 64, 128, 256)

#: Sequential outputs per work-item considered by the tuner.
WORK_PER_THREAD_CHOICES = (1, 2, 4, 8, 16, 32)


@dataclass
class BenchmarkOutcome:
    """The best kernel found for one benchmark on one device."""

    benchmark: str
    device: DeviceModel
    result: SimulationResult
    configuration: Dict[str, object]
    strategy: str
    uses_tiling: bool
    evaluations: int

    @property
    def gelements_per_second(self) -> float:
        return self.result.gelements_per_second

    @property
    def runtime_ms(self) -> float:
        return self.result.runtime_ms

    def describe(self) -> str:
        return (
            f"{self.benchmark} on {self.device.name}: "
            f"{self.gelements_per_second:.3f} GElem/s "
            f"({self.strategy}, {self.configuration})"
        )


# ---------------------------------------------------------------------------
# Lift: explore, tune, simulate
# ---------------------------------------------------------------------------

def _valid_tile_sizes(benchmark: StencilBenchmark, shape: Sequence[int]) -> List[int]:
    """Tile widths considered for this benchmark at this input size.

    The structural constraint of the tiling rule (``u > size − step``) always
    holds for the candidates below; exact coverage of non-divisible input
    sizes is handled by rounding the ND-range up and guarding the boundary
    work-groups, so it does not restrict the candidate set here.
    """
    size = benchmark.stencil_extent
    return [
        tile
        for tile in EXPLORATION_TILE_SIZES
        if tile > size - 1 and all(tile <= extent for extent in shape)
    ]


def parameter_space_for(
    lowered: LoweredProgram,
    problem: ProblemInstance,
    device: DeviceModel,
) -> ParameterSpace:
    """The tunable parameters of one lowered Lift variant on one device."""
    ndims = problem.ndims
    parameters: List[Parameter] = []
    if lowered.uses_tiling:
        # Tiled kernels fix the work-group to the tile's output block; only the
        # per-thread sequential work remains tunable.
        outputs_per_tile = max(
            1,
            (lowered.tile_size - lowered.stencil_size + 1),
        )
        wg = [("wg_x", (outputs_per_tile,)), ("wg_y", (outputs_per_tile,))]
        if ndims == 3:
            wg.append(("wg_z", (min(outputs_per_tile, 4),)))
        for name, values in wg[:ndims]:
            parameters.append(Parameter(name, values))
        parameters.append(Parameter("work_per_thread", (1, 2)))
    else:
        dim_names = ["wg_x", "wg_y", "wg_z"][:ndims]
        for name in dim_names:
            parameters.append(Parameter(name, WORKGROUP_CHOICES))
        parameters.append(Parameter("work_per_thread", WORK_PER_THREAD_CHOICES))

    constraints = opencl_constraints(
        max_workgroup_size=device.max_workgroup_size,
        local_memory_bytes=device.local_memory_bytes,
        output_shape=problem.output_shape,
    )
    return ParameterSpace(parameters, constraints)


def _validation_shape(benchmark: StencilBenchmark,
                      variant: ExplorationResult) -> Tuple[int, ...]:
    """A small input shape on which the variant computes the full output.

    See :func:`repro.engine.worker.validation_shape`, which holds the
    shared tiling exact-coverage logic.
    """
    return validation_shape(benchmark.stencil_extent, benchmark.ndims,
                            variant.lowered)


def _functional_validator(benchmark: StencilBenchmark, variant: ExplorationResult):
    """A tuner hook executing the lowered variant and checking it functionally.

    Both the high-level program and the lowered variant run through the
    cross-check backend (compiled NumPy verified against the reference
    interpreter) and their results are compared by
    :func:`~repro.rewriting.exploration.verify_variants`.  Any divergence
    means a rewrite or the compiler miscompiled the kernel the tuner is
    about to report as the winner, so the hook raises.
    """
    from ..backend import BackendMismatch, NumpyBackend
    from ..rewriting.exploration import verify_variants

    def validate(_config: Dict[str, object]) -> None:
        import numpy as np

        shape = _validation_shape(benchmark, variant)
        inputs = benchmark.make_inputs(shape, 23)
        program = benchmark.build_program()
        if not verify_variants(program, [variant], list(inputs), backend="crosscheck"):
            raise BackendMismatch(
                f"{benchmark.name}: tuned variant {variant.strategy.describe()!r} "
                "diverges from the high-level program"
            )
        # The serving layer executes tuned variants through buffer-pooled
        # execution plans: require the plan path to reproduce the generic
        # compiled path bit for bit before this variant can win the search.
        # Variants only the interpreter fallback can execute have no plan
        # (or no compiled kernel) to compare — they validated above.
        from ..backend import CompileError

        backend = NumpyBackend()
        generic = backend.run(variant.lowered.program, inputs)
        try:
            planned = backend.plan(variant.lowered.program, inputs).run(inputs)
        except CompileError:
            return
        if not np.array_equal(generic, planned):
            raise BackendMismatch(
                f"{benchmark.name}: execution plan diverges from the generic "
                f"path for variant {variant.strategy.describe()!r}"
            )

    return validate


def _steady_measurer(benchmark: StencilBenchmark, variant: ExplorationResult,
                     runs: int = 3):
    """A tuner ``measure_best`` hook timing the warm plan-replay sweep.

    Searches the tape optimizer's tile shapes (unfused tape, heuristic tile
    and the row/slab-block candidates) crossed with the machine's replay
    worker counts, all with warm fused-plan replays, and returns
    ``(steady_seconds, tile_shape, parallel_workers)`` for the winner —
    reported as :attr:`~repro.tuning.tuner.TuningResult.steady_cost_s` /
    :attr:`~repro.tuning.tuner.TuningResult.tile_shape` /
    :attr:`~repro.tuning.tuner.TuningResult.parallel_workers`.
    """
    from ..backend import NumpyBackend
    from ..backend.fuse import measure_best_tile
    from ..tuning.parameters import fuse_tile_candidates

    def measure(_config: Dict[str, object]):
        shape = _validation_shape(benchmark, variant)
        inputs = benchmark.make_inputs(shape, 29)
        backend = NumpyBackend()
        return measure_best_tile(
            backend, variant.lowered.program, inputs,
            candidates=fuse_tile_candidates(benchmark.ndims), runs=runs,
        )

    return measure


def scaled_shape(shape: Sequence[int], scale: float) -> Tuple[int, ...]:
    """Shrink an input shape by ``scale`` (>= 1 leaves it untouched).

    Shared by the figure drivers and the engine CLI so every entry point
    scales the paper's input sizes the same way.
    """
    if scale >= 1.0:
        return tuple(shape)
    return tuple(max(16, int(extent * scale)) for extent in shape)


def sweep_engine(workers: int = 1, store=None):
    """A shared :class:`~repro.engine.SearchEngine` for multi-benchmark sweeps.

    Returns ``None`` for the plain serial configuration (callers then stay
    on the serial path); otherwise one engine whose worker pool and store
    are reused across every ``lift_best_result`` call of the sweep.  The
    caller owns the engine and must ``close()`` it.
    """
    if workers == 1 and store is None:
        return None
    from ..engine import SearchEngine

    return SearchEngine(store=store, workers=workers)


def explore_variants_for(benchmark: StencilBenchmark,
                         shape: Sequence[int]) -> List[ExplorationResult]:
    """The macro-exploration variant set the pipeline tunes for one benchmark.

    This is the single source of candidate variants for both the serial
    pipeline below and the parallel search engine (:mod:`repro.engine`), so
    the two paths always search the same space.
    """
    shape = tuple(shape)
    tile_sizes = _valid_tile_sizes(benchmark, shape)
    radius = (benchmark.stencil_extent - 1) // 2
    return explore(
        benchmark.build_program(),
        stencil_size=benchmark.stencil_extent,
        stencil_step=1,
        padded_length=shape[-1] + 2 * radius,
        tile_sizes=tile_sizes,
        validate_tiles=False,
    )


def lift_best_result(
    benchmark: StencilBenchmark,
    shape: Optional[Sequence[int]] = None,
    device: Optional[DeviceModel] = None,
    tuner_budget: int = 300,
    label: Optional[str] = None,
    validate_functional: bool = False,
    workers: int = 1,
    store=None,
    session: Optional[str] = None,
    engine=None,
    measure_steady: bool = False,
) -> BenchmarkOutcome:
    """Run the full Lift pipeline for one benchmark on one device.

    With ``validate_functional`` set, every tuned kernel variant is also
    executed on a small grid through the compiled NumPy backend and checked
    against the reference interpreter before it may be reported — and its
    execution plan is required to match the generic path bit for bit.
    ``measure_steady`` additionally times the winning variant's warm
    plan-replay sweep (:attr:`~repro.tuning.tuner.TuningResult.steady_cost_s`).

    ``workers`` > 1 (or a ``store`` — a :class:`~repro.engine.ResultsStore`
    or a path for one) routes the search through the parallel engine:
    evaluations fan out over worker processes and are memoised in the
    store.  The default ``workers=1`` without a store is the original
    serial path; both paths search the same space in the same order and
    report the same best kernel.  Callers sweeping many benchmarks should
    build one :class:`~repro.engine.SearchEngine` and pass it as
    ``engine`` so the worker pool and store are shared across calls
    (the figure drivers do this).
    """
    if device is None:
        raise ValueError("a device model is required")
    shape = tuple(shape or benchmark.default_shape)
    problem = benchmark.problem(shape, label=label)
    virtual = VirtualDevice(device)

    if engine is not None or workers != 1 or store is not None:
        return _lift_best_result_engine(
            benchmark, shape, device, tuner_budget, problem, virtual,
            validate_functional, workers, store, session, engine,
        )

    variants = explore_variants_for(benchmark, shape)

    best: Optional[BenchmarkOutcome] = None
    total_evaluations = 0
    for variant in variants:
        space = parameter_space_for(variant.lowered, problem, device)

        def objective(config: Dict[str, object], _variant=variant) -> float:
            kernel_config = kernel_config_from(_variant.lowered, config, problem.ndims)
            profile = build_profile(_variant.lowered, problem, kernel_config)
            return virtual.run(profile).runtime_s

        tuner = AutoTuner(
            space,
            objective,
            budget=tuner_budget,
            strategy="exhaustive",
            validate_best=(
                _functional_validator(benchmark, variant)
                if validate_functional
                else None
            ),
            measure_best=(
                _steady_measurer(benchmark, variant)
                if measure_steady
                else None
            ),
        )
        try:
            tuning = tuner.tune()
        except ValueError:
            # No valid configuration for this variant on this device (e.g. the
            # tile's output block exceeds the device's work-group limit).
            continue
        total_evaluations += tuning.evaluations

        kernel_config = kernel_config_from(
            variant.lowered, tuning.best_configuration, problem.ndims
        )
        profile = build_profile(variant.lowered, problem, kernel_config,
                                label=f"lift-{benchmark.name}-{variant.strategy.describe()}")
        result = virtual.run(profile)
        outcome = BenchmarkOutcome(
            benchmark=benchmark.name,
            device=device,
            result=result,
            configuration=dict(tuning.best_configuration),
            strategy=variant.strategy.describe(),
            uses_tiling=variant.lowered.uses_tiling,
            evaluations=tuning.evaluations,
        )
        if best is None or outcome.result.runtime_s < best.result.runtime_s:
            best = outcome

    assert best is not None
    best.evaluations = total_evaluations
    return best


def _lift_best_result_engine(
    benchmark: StencilBenchmark,
    shape: Tuple[int, ...],
    device: DeviceModel,
    tuner_budget: int,
    problem: ProblemInstance,
    virtual: VirtualDevice,
    validate_functional: bool,
    workers: int,
    store,
    session: Optional[str],
    engine=None,
) -> BenchmarkOutcome:
    """The engine-backed twin of the serial loop in :func:`lift_best_result`."""
    from contextlib import nullcontext

    from ..engine import SearchEngine
    from ..rewriting.strategies import lower_program

    if engine is None:
        context = SearchEngine(store=store, workers=workers,
                               validate=validate_functional)
    else:
        context = nullcontext(engine)  # caller owns the pool and store
    with context as engine:
        outcome = engine.run(
            benchmark,
            shape=shape,
            device=device,
            budget=tuner_budget,
            strategy="exhaustive",
            session=session,
        )

    best = outcome.best
    lowered = lower_program(benchmark.build_program(), best.variant.to_strategy())
    kernel_config = kernel_config_from(lowered, best.best_config, problem.ndims)
    strategy_text = best.variant.describe()
    profile = build_profile(lowered, problem, kernel_config,
                            label=f"lift-{benchmark.name}-{strategy_text}")
    result = virtual.run(profile)
    return BenchmarkOutcome(
        benchmark=benchmark.name,
        device=device,
        result=result,
        configuration=dict(best.best_config),
        strategy=strategy_text,
        uses_tiling=lowered.uses_tiling,
        evaluations=outcome.evaluations,
    )


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------

def reference_result(
    benchmark: StencilBenchmark,
    benchmark_key: str,
    device: DeviceModel,
    shape: Optional[Sequence[int]] = None,
) -> SimulationResult:
    """Simulate the hand-written reference kernel for one Figure-7 benchmark."""
    shape = tuple(shape or benchmark.default_shape)
    problem = benchmark.problem(shape)
    profile = reference_profile(benchmark_key, problem, device)
    return VirtualDevice(device).run(profile)


def ppcg_best_result(
    benchmark: StencilBenchmark,
    device: DeviceModel,
    shape: Optional[Sequence[int]] = None,
    tuner_budget: int = 400,
) -> Tuple[SimulationResult, Dict[str, object], int]:
    """Tune and simulate the PPCG baseline for one benchmark on one device."""
    shape = tuple(shape or benchmark.default_shape)
    problem = benchmark.problem(shape)
    radius = (benchmark.stencil_extent - 1) // 2
    compiler = PPCGCompiler(problem, stencil_radius=radius)
    space = ppcg_parameter_space(problem, device)
    virtual = VirtualDevice(device)

    def objective(config: Dict[str, object]) -> float:
        schedule = compiler.schedule_from_config(config)
        return virtual.run(compiler.profile(schedule, device)).runtime_s

    tuner = AutoTuner(space, objective, budget=tuner_budget, strategy="exhaustive")
    tuning = tuner.tune()
    schedule = compiler.schedule_from_config(tuning.best_configuration)
    result = virtual.run(compiler.profile(schedule, device))
    return result, dict(tuning.best_configuration), tuning.evaluations


__all__ = [
    "BenchmarkOutcome",
    "VALIDATION_SHAPES",
    "explore_variants_for",
    "kernel_config_from",
    "lift_best_result",
    "parameter_space_for",
    "scaled_shape",
    "reference_result",
    "ppcg_best_result",
    "EXPLORATION_TILE_SIZES",
    "WORKGROUP_CHOICES",
    "WORK_PER_THREAD_CHOICES",
]
