"""The shared experiment pipeline: macro exploration → parameter tuning → simulation.

This mirrors the paper's methodology (§6):

1. the macro rewrites produce several low-level Lift expressions per benchmark
   (untiled, and overlapped tiling with several tile sizes / local-memory
   choices);
2. each variant's numerical parameters (work-group sizes, work per thread) are
   tuned by the ATF-style tuner against the virtual device;
3. the fastest variant+configuration wins and is reported, just like the
   best-found kernel in the paper.

The same tuner and virtual device are used for the PPCG baseline, matching the
paper's "both approaches auto-tune for up to three hours" setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..apps.base import StencilBenchmark
from ..baselines.ppcg import PPCGCompiler, ppcg_parameter_space
from ..baselines.reference_kernels import reference_profile
from ..rewriting.exploration import ExplorationResult, explore
from ..runtime.simulator.device import DeviceModel
from ..runtime.simulator.executor import SimulationResult, VirtualDevice
from ..runtime.simulator.kernel_model import KernelConfig, ProblemInstance, build_profile
from ..tuning.parameters import Parameter, ParameterSpace, opencl_constraints
from ..tuning.tuner import AutoTuner

#: Tile widths considered by the macro exploration (before validity filtering).
EXPLORATION_TILE_SIZES = (4, 6, 8, 10, 18, 34, 66)

#: Work-group extents considered per dimension.
WORKGROUP_CHOICES = (1, 2, 4, 8, 16, 32, 64, 128, 256)

#: Sequential outputs per work-item considered by the tuner.
WORK_PER_THREAD_CHOICES = (1, 2, 4, 8, 16, 32)


@dataclass
class BenchmarkOutcome:
    """The best kernel found for one benchmark on one device."""

    benchmark: str
    device: DeviceModel
    result: SimulationResult
    configuration: Dict[str, object]
    strategy: str
    uses_tiling: bool
    evaluations: int

    @property
    def gelements_per_second(self) -> float:
        return self.result.gelements_per_second

    @property
    def runtime_ms(self) -> float:
        return self.result.runtime_ms

    def describe(self) -> str:
        return (
            f"{self.benchmark} on {self.device.name}: "
            f"{self.gelements_per_second:.3f} GElem/s "
            f"({self.strategy}, {self.configuration})"
        )


# ---------------------------------------------------------------------------
# Lift: explore, tune, simulate
# ---------------------------------------------------------------------------

def _valid_tile_sizes(benchmark: StencilBenchmark, shape: Sequence[int]) -> List[int]:
    """Tile widths considered for this benchmark at this input size.

    The structural constraint of the tiling rule (``u > size − step``) always
    holds for the candidates below; exact coverage of non-divisible input
    sizes is handled by rounding the ND-range up and guarding the boundary
    work-groups, so it does not restrict the candidate set here.
    """
    size = benchmark.stencil_extent
    return [
        tile
        for tile in EXPLORATION_TILE_SIZES
        if tile > size - 1 and all(tile <= extent for extent in shape)
    ]


def _parameter_space_for(
    variant: ExplorationResult,
    problem: ProblemInstance,
    device: DeviceModel,
) -> ParameterSpace:
    """The tunable parameters of one lowered Lift variant on one device."""
    ndims = problem.ndims
    parameters: List[Parameter] = []
    if variant.lowered.uses_tiling:
        # Tiled kernels fix the work-group to the tile's output block; only the
        # per-thread sequential work remains tunable.
        outputs_per_tile = max(
            1,
            (variant.lowered.tile_size - variant.lowered.stencil_size + 1),
        )
        wg = [("wg_x", (outputs_per_tile,)), ("wg_y", (outputs_per_tile,))]
        if ndims == 3:
            wg.append(("wg_z", (min(outputs_per_tile, 4),)))
        for name, values in wg[:ndims]:
            parameters.append(Parameter(name, values))
        parameters.append(Parameter("work_per_thread", (1, 2)))
    else:
        dim_names = ["wg_x", "wg_y", "wg_z"][:ndims]
        for name in dim_names:
            parameters.append(Parameter(name, WORKGROUP_CHOICES))
        parameters.append(Parameter("work_per_thread", WORK_PER_THREAD_CHOICES))

    constraints = opencl_constraints(
        max_workgroup_size=device.max_workgroup_size,
        local_memory_bytes=device.local_memory_bytes,
        output_shape=problem.output_shape,
    )
    return ParameterSpace(parameters, constraints)


def _config_from(variant: ExplorationResult, tuning_config: Dict[str, object],
                 ndims: int) -> KernelConfig:
    wg = tuple(
        int(tuning_config.get(name, 1)) for name in ["wg_x", "wg_y", "wg_z"][:ndims]
    )
    return KernelConfig(
        workgroup_size=wg,
        work_per_thread=int(tuning_config.get("work_per_thread", 1)),
        tile_size=variant.lowered.tile_size,
        use_local_memory=variant.lowered.uses_local_memory,
        unrolled=variant.lowered.unrolled,
    )


#: Small grids used for the functional cross-check of tuned kernel variants.
VALIDATION_SHAPES = {2: (13, 11), 3: (5, 7, 9)}


def _validation_shape(benchmark: StencilBenchmark,
                      variant: ExplorationResult) -> Tuple[int, ...]:
    """A small input shape on which the variant computes the full output.

    Untiled variants work on any shape.  A tiled variant only reproduces the
    whole output when its tiles exactly cover the padded input
    (``(padded − u) % v == 0``); at the benchmark's own sizes Lift instead
    rounds the ND-range up, which the interpreter does not model, so the
    validation grid is chosen to satisfy exact coverage.
    """
    if not variant.lowered.uses_tiling:
        return VALIDATION_SHAPES[benchmark.ndims]
    u = variant.lowered.tile_size
    v = u - (variant.lowered.stencil_size - variant.lowered.stencil_step)
    radius = (benchmark.stencil_extent - 1) // 2
    padded = u
    while padded - 2 * radius < max(8, variant.lowered.stencil_size):
        padded += v
    return (padded - 2 * radius,) * benchmark.ndims


def _functional_validator(benchmark: StencilBenchmark, variant: ExplorationResult):
    """A tuner hook executing the lowered variant and checking it functionally.

    Both the high-level program and the lowered variant run through the
    cross-check backend (compiled NumPy verified against the reference
    interpreter) and their results are compared by
    :func:`~repro.rewriting.exploration.verify_variants`.  Any divergence
    means a rewrite or the compiler miscompiled the kernel the tuner is
    about to report as the winner, so the hook raises.
    """
    from ..backend import BackendMismatch
    from ..rewriting.exploration import verify_variants

    def validate(_config: Dict[str, object]) -> None:
        shape = _validation_shape(benchmark, variant)
        inputs = benchmark.make_inputs(shape, 23)
        program = benchmark.build_program()
        if not verify_variants(program, [variant], list(inputs), backend="crosscheck"):
            raise BackendMismatch(
                f"{benchmark.name}: tuned variant {variant.strategy.describe()!r} "
                "diverges from the high-level program"
            )

    return validate


def lift_best_result(
    benchmark: StencilBenchmark,
    shape: Optional[Sequence[int]] = None,
    device: Optional[DeviceModel] = None,
    tuner_budget: int = 300,
    label: Optional[str] = None,
    validate_functional: bool = False,
) -> BenchmarkOutcome:
    """Run the full Lift pipeline for one benchmark on one device.

    With ``validate_functional`` set, every tuned kernel variant is also
    executed on a small grid through the compiled NumPy backend and checked
    against the reference interpreter before it may be reported.
    """
    if device is None:
        raise ValueError("a device model is required")
    shape = tuple(shape or benchmark.default_shape)
    problem = benchmark.problem(shape, label=label)
    virtual = VirtualDevice(device)

    program = benchmark.build_program()
    tile_sizes = _valid_tile_sizes(benchmark, shape)
    radius = (benchmark.stencil_extent - 1) // 2
    variants = explore(
        program,
        stencil_size=benchmark.stencil_extent,
        stencil_step=1,
        padded_length=shape[-1] + 2 * radius,
        tile_sizes=tile_sizes,
        validate_tiles=False,
    )

    best: Optional[BenchmarkOutcome] = None
    total_evaluations = 0
    for variant in variants:
        space = _parameter_space_for(variant, problem, device)

        def objective(config: Dict[str, object], _variant=variant) -> float:
            kernel_config = _config_from(_variant, config, problem.ndims)
            profile = build_profile(_variant.lowered, problem, kernel_config)
            return virtual.run(profile).runtime_s

        tuner = AutoTuner(
            space,
            objective,
            budget=tuner_budget,
            strategy="exhaustive",
            validate_best=(
                _functional_validator(benchmark, variant)
                if validate_functional
                else None
            ),
        )
        try:
            tuning = tuner.tune()
        except ValueError:
            # No valid configuration for this variant on this device (e.g. the
            # tile's output block exceeds the device's work-group limit).
            continue
        total_evaluations += tuning.evaluations

        kernel_config = _config_from(variant, tuning.best_configuration, problem.ndims)
        profile = build_profile(variant.lowered, problem, kernel_config,
                                label=f"lift-{benchmark.name}-{variant.strategy.describe()}")
        result = virtual.run(profile)
        outcome = BenchmarkOutcome(
            benchmark=benchmark.name,
            device=device,
            result=result,
            configuration=dict(tuning.best_configuration),
            strategy=variant.strategy.describe(),
            uses_tiling=variant.lowered.uses_tiling,
            evaluations=tuning.evaluations,
        )
        if best is None or outcome.result.runtime_s < best.result.runtime_s:
            best = outcome

    assert best is not None
    best.evaluations = total_evaluations
    return best


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------

def reference_result(
    benchmark: StencilBenchmark,
    benchmark_key: str,
    device: DeviceModel,
    shape: Optional[Sequence[int]] = None,
) -> SimulationResult:
    """Simulate the hand-written reference kernel for one Figure-7 benchmark."""
    shape = tuple(shape or benchmark.default_shape)
    problem = benchmark.problem(shape)
    profile = reference_profile(benchmark_key, problem, device)
    return VirtualDevice(device).run(profile)


def ppcg_best_result(
    benchmark: StencilBenchmark,
    device: DeviceModel,
    shape: Optional[Sequence[int]] = None,
    tuner_budget: int = 400,
) -> Tuple[SimulationResult, Dict[str, object], int]:
    """Tune and simulate the PPCG baseline for one benchmark on one device."""
    shape = tuple(shape or benchmark.default_shape)
    problem = benchmark.problem(shape)
    radius = (benchmark.stencil_extent - 1) // 2
    compiler = PPCGCompiler(problem, stencil_radius=radius)
    space = ppcg_parameter_space(problem, device)
    virtual = VirtualDevice(device)

    def objective(config: Dict[str, object]) -> float:
        schedule = compiler.schedule_from_config(config)
        return virtual.run(compiler.profile(schedule, device)).runtime_s

    tuner = AutoTuner(space, objective, budget=tuner_budget, strategy="exhaustive")
    tuning = tuner.tune()
    schedule = compiler.schedule_from_config(tuning.best_configuration)
    result = virtual.run(compiler.profile(schedule, device))
    return result, dict(tuning.best_configuration), tuning.evaluations


__all__ = [
    "BenchmarkOutcome",
    "VALIDATION_SHAPES",
    "lift_best_result",
    "reference_result",
    "ppcg_best_result",
    "EXPLORATION_TILE_SIZES",
    "WORKGROUP_CHOICES",
    "WORK_PER_THREAD_CHOICES",
]
