"""Figure 7: Lift-generated kernels vs. hand-written reference kernels.

For each of the six benchmarks with hand-optimised OpenCL implementations
(Acoustic, Hotspot2D, Hotspot3D, SRAD1, SRAD2, Stencil2D) and each of the
three GPUs, the experiment reports giga-elements updated per second for the
best Lift-generated kernel and for the reference kernel — the same rows the
paper plots in Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..apps.suite import FIGURE7_BENCHMARKS, get_benchmark
from ..runtime.simulator.device import DEVICES
from .pipeline import (
    lift_best_result,
    reference_result,
    scaled_shape as _scaled_shape,
    sweep_engine as _sweep_engine,
)


@dataclass
class Figure7Row:
    """One bar pair of Figure 7."""

    benchmark: str
    device: str
    lift_gelements: float
    reference_gelements: float
    lift_strategy: str
    lift_uses_tiling: bool

    @property
    def speedup_over_reference(self) -> float:
        return self.lift_gelements / self.reference_gelements

    def as_dict(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "device": self.device,
            "lift_gelements_per_s": round(self.lift_gelements, 4),
            "reference_gelements_per_s": round(self.reference_gelements, 4),
            "lift_vs_reference": round(self.speedup_over_reference, 3),
            "lift_strategy": self.lift_strategy,
        }


def run_figure7(
    benchmarks: Optional[Sequence[str]] = None,
    devices: Optional[Sequence[str]] = None,
    tuner_budget: int = 2000,
    shape_scale: float = 1.0,
    workers: int = 1,
    store=None,
) -> List[Figure7Row]:
    """Run the Figure-7 comparison.

    ``shape_scale`` can shrink the problem sizes (used by the fast test-suite
    configuration); the default reproduces the paper's sizes.  ``workers`` /
    ``store`` route the per-benchmark searches through the parallel engine
    (see :func:`~repro.experiments.pipeline.lift_best_result`).
    """
    benchmarks = list(benchmarks or FIGURE7_BENCHMARKS)
    device_keys = list(devices or DEVICES.keys())
    rows: List[Figure7Row] = []
    engine = _sweep_engine(workers, store)
    try:
        for key in benchmarks:
            benchmark = get_benchmark(key)
            shape = _scaled_shape(benchmark.default_shape, shape_scale)
            for device_key in device_keys:
                device = DEVICES[device_key]
                lift = lift_best_result(
                    benchmark, shape=shape, device=device, tuner_budget=tuner_budget,
                    workers=workers, store=store, engine=engine,
                )
                reference = reference_result(benchmark, key, device, shape=shape)
                rows.append(
                    Figure7Row(
                        benchmark=benchmark.name,
                        device=device.name,
                        lift_gelements=lift.gelements_per_second,
                        reference_gelements=reference.gelements_per_second,
                        lift_strategy=lift.strategy,
                        lift_uses_tiling=lift.uses_tiling,
                    )
                )
    finally:
        if engine is not None:
            engine.close()
    return rows


def format_figure7(rows: Sequence[Figure7Row]) -> str:
    header = (
        f"{'Benchmark':<12} {'Device':<16} {'Lift GE/s':>10} {'Ref GE/s':>10} "
        f"{'Lift/Ref':>9}  {'Lift strategy'}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.benchmark:<12} {row.device:<16} {row.lift_gelements:>10.3f} "
            f"{row.reference_gelements:>10.3f} {row.speedup_over_reference:>9.2f}  "
            f"{row.lift_strategy}"
        )
    return "\n".join(lines)


__all__ = ["Figure7Row", "run_figure7", "format_figure7"]
