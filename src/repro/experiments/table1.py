"""Regenerate Table 1: the benchmarks used in the evaluation."""

from __future__ import annotations


from ..apps.suite import table1_rows


def format_table1() -> str:
    """Render Table 1 as an aligned text table."""
    rows = table1_rows()
    header = f"{'Benchmark':<14} {'Dim':<4} {'Pts':>4} {'Input size':<24} {'#grids':>6}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['benchmark']:<14} {row['dim']:<4} {row['points']:>4} "
            f"{row['input_size']:<24} {row['grids']:>6}"
        )
    return "\n".join(lines)


__all__ = ["format_table1"]
