"""Experiment drivers regenerating the paper's tables and figures.

* :mod:`repro.experiments.table1` — the benchmark-characteristics table.
* :mod:`repro.experiments.figure7` — Lift vs. hand-written kernels (GElements/s).
* :mod:`repro.experiments.figure8` — Lift vs. PPCG speedups on small/large inputs.
* :mod:`repro.experiments.pipeline` — the shared explore → tune → simulate pipeline.
* :mod:`repro.experiments.backend_bench` — interpreter vs compiled backend timings.
"""

from .backend_bench import BackendTiming, run_backend_bench
from .pipeline import (
    BenchmarkOutcome,
    lift_best_result,
    ppcg_best_result,
    reference_result,
)
from .figure7 import Figure7Row, run_figure7
from .figure8 import Figure8Row, run_figure8
from .table1 import format_table1

__all__ = [
    "BackendTiming",
    "BenchmarkOutcome",
    "lift_best_result",
    "ppcg_best_result",
    "reference_result",
    "run_backend_bench",
    "Figure7Row",
    "run_figure7",
    "Figure8Row",
    "run_figure8",
    "format_table1",
]
