"""Figure 8: Lift-generated kernels vs. the PPCG polyhedral compiler.

For each of the eight single-kernel benchmarks from Rawat et al., both input
sizes and the three GPUs, the experiment tunes Lift and PPCG with the same
budget on the same virtual device and reports the speedup of the best Lift
kernel over the best PPCG kernel.  The paper's accompanying observation —
how often the best Lift kernel uses overlapped tiling on each platform — is
reported by :func:`tiling_usage`.

Large inputs are skipped on the ARM GPU, as in the paper ("large input sizes
did not fit onto the ARM GPU").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..apps.suite import FIGURE8_BENCHMARKS, get_benchmark
from ..runtime.simulator.device import DEVICES
from .pipeline import (
    lift_best_result,
    ppcg_best_result,
    scaled_shape as _scaled_shape,
    sweep_engine as _sweep_engine,
)


@dataclass
class Figure8Row:
    """One bar of Figure 8."""

    benchmark: str
    device: str
    size: str                   # "small" or "large"
    lift_gelements: float
    ppcg_gelements: float
    speedup_over_ppcg: float
    lift_strategy: str
    lift_uses_tiling: bool
    ppcg_configuration: Dict[str, object]

    def as_dict(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "device": self.device,
            "size": self.size,
            "speedup_over_ppcg": round(self.speedup_over_ppcg, 3),
            "lift_gelements_per_s": round(self.lift_gelements, 4),
            "ppcg_gelements_per_s": round(self.ppcg_gelements, 4),
            "lift_uses_tiling": self.lift_uses_tiling,
        }


def run_figure8(
    benchmarks: Optional[Sequence[str]] = None,
    devices: Optional[Sequence[str]] = None,
    sizes: Sequence[str] = ("small", "large"),
    tuner_budget: int = 2000,
    shape_scale: float = 1.0,
    workers: int = 1,
    store=None,
) -> List[Figure8Row]:
    """Run the Figure-8 comparison (Lift vs PPCG).

    ``workers`` / ``store`` route the Lift searches through the parallel
    engine (see :func:`~repro.experiments.pipeline.lift_best_result`).
    """
    benchmarks = list(benchmarks or FIGURE8_BENCHMARKS)
    device_keys = list(devices or DEVICES.keys())
    rows: List[Figure8Row] = []
    engine = _sweep_engine(workers, store)
    try:
        for key in benchmarks:
            benchmark = get_benchmark(key)
            for size in sizes:
                for device_key in device_keys:
                    device = DEVICES[device_key]
                    if device.vendor == "ARM" and size == "large":
                        continue  # paper: large inputs did not fit on the ARM board
                    shape = _scaled_shape(benchmark.shape_for(size), shape_scale)
                    lift = lift_best_result(
                        benchmark, shape=shape, device=device, tuner_budget=tuner_budget,
                        workers=workers, store=store, engine=engine,
                    )
                    ppcg, ppcg_config, _ = ppcg_best_result(
                        benchmark, device, shape=shape, tuner_budget=tuner_budget
                    )
                    rows.append(
                        Figure8Row(
                            benchmark=benchmark.name,
                            device=device.name,
                            size=size,
                            lift_gelements=lift.gelements_per_second,
                            ppcg_gelements=ppcg.gelements_per_second,
                            speedup_over_ppcg=(
                                lift.gelements_per_second / ppcg.gelements_per_second
                            ),
                            lift_strategy=lift.strategy,
                            lift_uses_tiling=lift.uses_tiling,
                            ppcg_configuration=ppcg_config,
                        )
                    )
    finally:
        if engine is not None:
            engine.close()
    return rows


def tiling_usage(rows: Sequence[Figure8Row]) -> Dict[str, float]:
    """Fraction of best Lift kernels using overlapped tiling, per device.

    The paper reports that none of the best ARM/AMD kernels use tiling while
    roughly a third of the Nvidia ones do (§7.2).
    """
    usage: Dict[str, List[bool]] = {}
    for row in rows:
        usage.setdefault(row.device, []).append(row.lift_uses_tiling)
    return {
        device: (sum(flags) / len(flags) if flags else 0.0)
        for device, flags in usage.items()
    }


def format_figure8(rows: Sequence[Figure8Row]) -> str:
    header = (
        f"{'Benchmark':<14} {'Device':<16} {'Size':<6} {'Lift GE/s':>10} "
        f"{'PPCG GE/s':>10} {'Speedup':>8}  {'Tiled?'}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.benchmark:<14} {row.device:<16} {row.size:<6} "
            f"{row.lift_gelements:>10.3f} {row.ppcg_gelements:>10.3f} "
            f"{row.speedup_over_ppcg:>8.2f}  {'yes' if row.lift_uses_tiling else 'no'}"
        )
    lines.append("")
    lines.append("Tiling usage among best Lift kernels per device:")
    for device, fraction in tiling_usage(rows).items():
        lines.append(f"  {device:<16} {fraction * 100:.0f}%")
    return "\n".join(lines)



__all__ = ["Figure8Row", "run_figure8", "tiling_usage", "format_figure8"]
