"""Request-lifecycle traces in a bounded ring buffer.

The service records one trace dict per completed request: the per-stage
wall times of its journey (admit → queue → execute sub-stages → respond),
batch/shard context, and — when the executed group replayed a fused region
in parallel — the per-chunk wall times of the most recent
:class:`~repro.backend.fuse.ReplayWorkerPool` run.  Traces live in a
:class:`collections.deque` ring (O(1) record, oldest evicted first);
requests slower than the configured threshold are *additionally* kept in a
second ring so a burst of fast traffic cannot evict the one trace an
operator actually wants to look at.

Recording happens on the service loop after the response futures resolve —
never inside the numeric replay path — so tracing adds a few dict/tuple
allocations per *request*, not per *step*, and the zero-allocation replay
invariants are untouched.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, List, Optional


class TraceRing:
    """Two bounded rings of request traces: everything, and the slow ones."""

    def __init__(self, capacity: int = 256, slow_ms: float = 50.0,
                 slow_capacity: Optional[int] = None) -> None:
        if capacity < 1:
            raise ValueError("trace ring capacity must be >= 1")
        self.capacity = int(capacity)
        self.slow_ms = float(slow_ms)
        self.slow_capacity = int(slow_capacity or max(16, capacity // 4))
        self._lock = threading.Lock()
        self._traces: "deque[Dict[str, object]]" = deque(maxlen=self.capacity)
        self._slow: "deque[Dict[str, object]]" = deque(maxlen=self.slow_capacity)
        self._sequence = 0
        self.recorded = 0
        self.slow_recorded = 0

    def record(self, trace: Dict[str, object]) -> Dict[str, object]:
        """File one finished trace; tags it slow past the threshold."""
        with self._lock:
            self._sequence += 1
            trace["id"] = self._sequence
            trace["slow"] = bool(
                float(trace.get("total_ms") or 0.0) >= self.slow_ms
            )
            self._traces.append(trace)
            self.recorded += 1
            if trace["slow"]:
                self._slow.append(trace)
                self.slow_recorded += 1
        return trace

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def snapshot(self, slow_only: bool = False,
                 limit: Optional[int] = None) -> List[Dict[str, object]]:
        """Most-recent-first copies of the ring (or the slow ring)."""
        with self._lock:
            source = self._slow if slow_only else self._traces
            traces = [dict(trace) for trace in reversed(source)]
        if limit is not None and limit >= 0:
            traces = traces[:limit]
        return traces

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "slow_capacity": self.slow_capacity,
                "slow_ms": self.slow_ms,
                "recorded": self.recorded,
                "slow_recorded": self.slow_recorded,
                "retained": len(self._traces),
                "slow_retained": len(self._slow),
            }


def format_trace(trace: Dict[str, object]) -> str:
    """One trace as an indented per-stage breakdown (the CLI rendering)."""
    header = (
        f"#{trace.get('id')} {trace.get('benchmark') or '<raw>'} "
        f"digest {str(trace.get('digest') or '')[:12]} "
        f"batch {trace.get('batch_size')} "
        f"total {float(trace.get('total_ms') or 0.0):.2f} ms"
    )
    if trace.get("shard") is not None:
        header += f" shard {trace['shard']}"
    if trace.get("slow"):
        header += "  [slow]"
    if trace.get("error"):
        header += f"  ERROR: {trace['error']}"
    lines = [header]
    for name, duration_ms in trace.get("stages") or []:
        lines.append(f"    {name:<16} {float(duration_ms):>9.3f} ms")
    chunks = trace.get("replay_chunks_ms")
    if chunks:
        rendered = " / ".join(f"{float(chunk):.3f}" for chunk in chunks)
        lines.append(f"    replay chunks    [{rendered}] ms "
                     f"({len(chunks)} workers)")
    return "\n".join(lines)


__all__ = ["TraceRing", "format_trace"]
