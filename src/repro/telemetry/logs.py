"""Logging setup for the serving stack (``repro serve --log-level``).

Everything under the ``repro`` logger namespace (``repro.service``,
``repro.service.shards``, ``repro.service.loadgen``, ``repro.telemetry``)
is configured here: one stream handler, either a human-readable line
format or JSON lines (``--log-json``) for log shippers.  The root logger
is left alone so embedding applications keep control of their own output.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import IO, Optional

#: The namespace every serving-stack logger hangs off.
ROOT_LOGGER = "repro"

_HUMAN_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_HUMAN_DATEFMT = "%H:%M:%S"


class JsonLineFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, msg (+ exc_info)."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "time": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.localtime(record.created)
            ),
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload)


def configure_logging(level: str = "info", json_lines: bool = False,
                      stream: Optional[IO[str]] = None) -> logging.Logger:
    """(Re)configure the ``repro`` logger tree; returns the root logger.

    Idempotent: replaces any handler a previous call installed, so tests
    and repeated ``serve`` invocations in one process do not stack
    duplicate handlers.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    numeric = getattr(logging, level.upper(), None)
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level: {level!r}")
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    if json_lines:
        handler.setFormatter(JsonLineFormatter())
    else:
        handler.setFormatter(
            logging.Formatter(_HUMAN_FORMAT, datefmt=_HUMAN_DATEFMT)
        )
    for existing in list(logger.handlers):
        logger.removeHandler(existing)
    logger.addHandler(handler)
    logger.setLevel(numeric)
    logger.propagate = False
    return logger


__all__ = ["JsonLineFormatter", "ROOT_LOGGER", "configure_logging"]
