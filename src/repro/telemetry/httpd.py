"""The asyncio HTTP sidecar: ``/metrics``, ``/healthz`` and ``/trace``.

A deliberately tiny HTTP/1.1 server (asyncio streams, one response per
connection, ``Connection: close``) — enough for Prometheus scrapers, load
balancer health checks and ``curl``, with zero dependencies.  It runs on
the *same* event loop as the serving endpoint, started by ``repro serve
--metrics-port``:

* ``GET /metrics`` — the process registry rendered as Prometheus text.
  On a sharded service the shard processes' registry snapshots are fetched
  over the existing ``stats`` pipe op (off-loop, they block) and merged in,
  so counters and histogram buckets are fleet totals.
* ``GET /healthz`` — JSON liveness: overall status (``503`` when any shard
  process has died), per-shard ``alive`` flags from ``Process.is_alive()``
  (no pipe round-trip — a wedged shard cannot wedge the health check), and
  the event loop's scheduling lag measured by a background drift task.
* ``GET /trace?slow=1&limit=N`` — the service's request-trace ring as JSON
  (same payload the ``repro trace`` CLI verb fetches over TCP).
"""

from __future__ import annotations

import asyncio
import json
import logging
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from .registry import MetricsRegistry, get_registry

log = logging.getLogger("repro.telemetry.http")

#: How often the lag monitor samples event-loop scheduling drift.
_LAG_INTERVAL_S = 0.25


class TelemetryHTTP:
    """The sidecar server; bind with :meth:`start`, tear down with :meth:`stop`."""

    def __init__(self, service=None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.service = service
        self.registry = registry if registry is not None else get_registry()
        self.loop_lag_s = 0.0
        self._server: Optional[asyncio.AbstractServer] = None
        self._lag_task: Optional[asyncio.Task] = None

    async def start(self, host: str = "127.0.0.1",
                    port: int = 9464) -> "TelemetryHTTP":
        if self._server is not None:
            raise RuntimeError("telemetry server already started")
        self._server = await asyncio.start_server(self._handle, host, port)
        self._lag_task = asyncio.get_running_loop().create_task(
            self._lag_monitor()
        )
        log.info("telemetry http listening on %s:%d", host, self.port)
        return self

    @property
    def port(self) -> int:
        assert self._server is not None and self._server.sockets
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._lag_task is not None:
            self._lag_task.cancel()
            try:
                await self._lag_task
            except asyncio.CancelledError:
                pass
            self._lag_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _lag_monitor(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            before = loop.time()
            await asyncio.sleep(_LAG_INTERVAL_S)
            self.loop_lag_s = max(0.0, loop.time() - before - _LAG_INTERVAL_S)

    # -- request handling ----------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request_line = await reader.readline()
            while True:  # drain headers; we need none of them
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, target = parts[0], parts[1]
            status, content_type, body = await self._route(method, target)
            payload = body.encode("utf-8")
            reason = {200: "OK", 404: "Not Found", 405: "Method Not Allowed",
                      503: "Service Unavailable"}.get(status, "OK")
            writer.write(
                (
                    f"HTTP/1.1 {status} {reason}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    f"Connection: close\r\n\r\n"
                ).encode("latin-1") + payload
            )
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
            except Exception:  # noqa: BLE001 - teardown must not raise
                pass

    async def _route(self, method: str,
                     target: str) -> Tuple[int, str, str]:
        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        if method not in ("GET", "HEAD"):
            return 405, "text/plain; charset=utf-8", "method not allowed\n"
        if path == "/metrics":
            text = await self._render_metrics()
            return 200, "text/plain; version=0.0.4; charset=utf-8", text
        if path == "/healthz":
            payload, healthy = self._health()
            return (200 if healthy else 503, "application/json",
                    json.dumps(payload, indent=2) + "\n")
        if path == "/trace":
            query = parse_qs(split.query)
            tracer = getattr(self.service, "tracer", None)
            if tracer is None:
                return 404, "application/json", '{"error": "no tracer"}\n'
            slow_only = query.get("slow", ["0"])[0] not in ("0", "", "false")
            limit = int(query.get("limit", ["20"])[0])
            payload = {"traces": tracer.snapshot(slow_only=slow_only,
                                                 limit=limit),
                       "ring": tracer.stats()}
            return 200, "application/json", json.dumps(payload) + "\n"
        return 404, "text/plain; charset=utf-8", "not found\n"

    async def _render_metrics(self) -> str:
        extra = []
        executor = getattr(self.service, "executor", None)
        if executor is not None:
            loop = asyncio.get_running_loop()
            # Shard stats are blocking, locked pipe round-trips — keep them
            # off the loop so a slow shard cannot stall serving.
            rows = await loop.run_in_executor(None, executor.stats)
            for row in rows:
                snapshot = row.get("telemetry")
                if snapshot:
                    extra.append(snapshot)
        return self.registry.render(extra=extra)

    def _health(self) -> Tuple[Dict[str, object], bool]:
        shards = []
        healthy = True
        executor = getattr(self.service, "executor", None)
        if executor is not None:
            for handle in executor.handles:
                alive = bool(handle.process.is_alive())
                shards.append({"shard": handle.index, "alive": alive})
                healthy = healthy and alive
        payload: Dict[str, object] = {
            "status": "ok" if healthy else "unhealthy",
            "shards": shards,
            "shards_alive": sum(1 for shard in shards if shard["alive"]),
            "event_loop_lag_ms": self.loop_lag_s * 1e3,
        }
        if self.service is not None:
            payload["requests_served"] = getattr(
                self.service, "requests_served", None
            )
        return payload, healthy


__all__ = ["TelemetryHTTP"]
