"""Process-wide telemetry: metrics registry, request tracing, HTTP surface.

Three small, dependency-free layers the rest of the stack instruments
itself through:

* :mod:`repro.telemetry.registry` — monotonic counters, sampled gauges and
  fixed-bucket log-spaced streaming histograms (p50/p95/p99 without
  retaining samples), collected in one process-wide
  :class:`~repro.telemetry.registry.MetricsRegistry` whose snapshots are
  mergeable across shard processes and renderable as Prometheus text.
* :mod:`repro.telemetry.trace` — span-based request-lifecycle traces
  (enqueue → batch formation → plan lookup → replay → respond) kept in a
  bounded ring buffer with a slow-request threshold, surfaced by the
  ``repro trace`` CLI verb and the ``/trace`` HTTP route.
* :mod:`repro.telemetry.httpd` — the asyncio HTTP sidecar serving
  ``/metrics`` (Prometheus text format) and ``/healthz`` (shard liveness +
  event-loop lag), enabled by ``repro serve --metrics-port``.

:mod:`repro.telemetry.logs` configures stdlib logging for the serving
stack (``repro serve --log-level`` / ``--log-json``).

Instrumentation contract: every hot-path call site guards its timing with
:func:`~repro.telemetry.registry.metrics_enabled`, and the instruments
themselves no-op when their registry is disabled — so with telemetry off
the steady replay loop runs the exact pre-telemetry instruction sequence,
and with it on the loop stays allocation-free (bucket increments only; the
existing tracemalloc zero-alloc tests guard this).
"""

from .registry import (
    BATCH_BUCKETS,
    LATENCY_BUCKETS,
    RATIO_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    get_registry,
    histogram,
    log_buckets,
    merge_snapshots,
    metrics_enabled,
    set_metrics_enabled,
)
from .trace import TraceRing

__all__ = [
    "BATCH_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "RATIO_BUCKETS",
    "TraceRing",
    "counter",
    "gauge",
    "get_registry",
    "histogram",
    "log_buckets",
    "merge_snapshots",
    "metrics_enabled",
    "set_metrics_enabled",
]
