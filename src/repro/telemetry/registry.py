"""The low-overhead metrics registry: counters, gauges, streaming histograms.

Design constraints, in order:

1. **Hot-path cost.**  The steady tape-replay loop calls ``observe`` per
   replay (and per parallel chunk).  An observation is one lock acquire,
   one :func:`bisect.bisect_left` into a fixed bounds tuple and a handful
   of scalar updates — no list growth, no per-sample retention, so the
   zero-allocation invariants of :mod:`repro.backend.plan` survive
   instrumentation.  When a registry is *disabled* every instrument
   returns immediately, and call sites additionally guard their
   ``perf_counter`` pairs with :func:`metrics_enabled`, so disabled
   telemetry costs one attribute read per site.
2. **Mergeability.**  Shard processes run their own default registry; the
   parent fetches :meth:`MetricsRegistry.snapshot` blobs over the existing
   shard ``stats`` pipe op and folds them in with
   :func:`merge_snapshots` — counters and histogram buckets sum, so
   fleet-level p99 comes out of bucket arithmetic, not sample shipping.
3. **Scrapeability.**  :meth:`MetricsRegistry.render` emits the Prometheus
   text exposition format (``# HELP``/``# TYPE``, cumulative
   ``_bucket{le=...}`` rows, ``_sum``/``_count``), which is what the
   ``/metrics`` HTTP route serves.

Histograms use fixed log-spaced buckets (:func:`log_buckets`): quantile
estimates are exact to within one bucket — a factor of 2 for the default
:data:`LATENCY_BUCKETS` — which is the advertised contract the loadgen
report asserts against ``numpy.percentile``.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence, Tuple


def log_buckets(start: float, factor: float, count: int) -> Tuple[float, ...]:
    """``count`` geometric bucket upper bounds: start, start*factor, ..."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("log_buckets needs start > 0, factor > 1, count >= 1")
    bounds = []
    bound = float(start)
    for _ in range(count):
        bounds.append(bound)
        bound *= factor
    return tuple(bounds)


#: Default latency bounds: 1 µs … ~67 s in factor-2 steps (28 buckets incl.
#: the +Inf overflow).  One-bucket quantile accuracy therefore means
#: "within 2×" — plenty for serving dashboards, cheap to merge.
LATENCY_BUCKETS = log_buckets(1e-6, 2.0, 27)

#: Micro-batch size bounds: the batcher rounds capacities to powers of two.
BATCH_BUCKETS = tuple(float(1 << i) for i in range(11))

#: Bounds for 0..1 ratios (e.g. parallel chunk imbalance).
RATIO_BUCKETS = (0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0)


class Counter:
    """A monotonic counter, optionally keyed by one label (e.g. a reason)."""

    def __init__(self, name: str, help: str = "", label: Optional[str] = None,
                 registry: Optional["MetricsRegistry"] = None) -> None:
        self.name = name
        self.help = help
        self.label = label
        self._registry = registry
        self._lock = threading.Lock()
        self.value = 0
        self.values: Dict[str, int] = {}

    def inc(self, amount: int = 1, label: Optional[str] = None) -> None:
        if self._registry is not None and not self._registry.enabled:
            return
        with self._lock:
            if label is None:
                self.value += amount
            else:
                self.values[label] = self.values.get(label, 0) + amount

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            entry: Dict[str, object] = {
                "type": "counter", "help": self.help, "value": self.value,
            }
            if self.label is not None:
                entry["label"] = self.label
                entry["values"] = dict(self.values)
            return entry


class Gauge:
    """A point-in-time value: either set directly or sampled via callback.

    Callback gauges (``fn=lambda: cache.stats()["hits"]``) are the way
    live cache/pool statistics surface without touching their hot paths —
    the callable runs only at snapshot/scrape time.
    """

    def __init__(self, name: str, help: str = "",
                 fn: Optional[Callable[[], float]] = None,
                 registry: Optional["MetricsRegistry"] = None) -> None:
        self.name = name
        self.help = help
        self.fn = fn
        self._registry = registry
        self._value = 0.0

    def set(self, value: float) -> None:
        if self._registry is not None and not self._registry.enabled:
            return
        self._value = float(value)

    def read(self) -> float:
        if self.fn is not None:
            try:
                return float(self.fn())
            except Exception:  # noqa: BLE001 - a dead callback must not kill a scrape
                return float("nan")
        return self._value

    def snapshot(self) -> Dict[str, object]:
        return {"type": "gauge", "help": self.help, "value": self.read()}


class Histogram:
    """A fixed-bucket streaming histogram (no per-sample retention).

    ``bounds`` are ascending bucket *upper* bounds; one implicit overflow
    bucket catches everything above the last bound.  ``observe`` is the
    hot call: one bisect, one bucket increment, scalar sum/min/max
    updates.  :meth:`quantile` walks the cumulative counts and linearly
    interpolates inside the selected bucket, so the estimate always lands
    in the same bucket as the true order statistic.
    """

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = LATENCY_BUCKETS,
                 registry: Optional["MetricsRegistry"] = None) -> None:
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram bounds must be ascending and unique")
        self.name = name
        self.help = help
        self.bounds = bounds
        self._registry = registry
        self._lock = threading.Lock()
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def bucket_index(self, value: float) -> int:
        """The bucket a value falls into (``len(bounds)`` = overflow)."""
        return bisect_left(self.bounds, float(value))

    def observe(self, value: float) -> None:
        if self._registry is not None and not self._registry.enabled:
            return
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def quantile(self, q: float) -> float:
        """Estimate the q-th percentile (``0 <= q <= 100``) from buckets."""
        with self._lock:
            counts = list(self.counts)
            total = self.count
            low = self.min
            high = self.max
        return _bucket_quantile(self.bounds, counts, total, q, low, high)

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "type": "histogram", "help": self.help,
                "bounds": list(self.bounds), "counts": list(self.counts),
                "count": self.count, "sum": self.sum,
                "min": self.min, "max": self.max,
            }


def _bucket_quantile(bounds: Sequence[float], counts: Sequence[int],
                     total: int, q: float,
                     low: Optional[float], high: Optional[float]) -> float:
    if total <= 0:
        return 0.0
    q = min(max(float(q), 0.0), 100.0)
    # The rank of the order statistic numpy's default (linear) percentile
    # targets; we resolve it to a bucket and interpolate within.
    rank = q / 100.0 * (total - 1) + 1.0
    cumulative = 0
    for index, bucket_count in enumerate(counts):
        if bucket_count == 0:
            continue
        previous = cumulative
        cumulative += bucket_count
        if cumulative >= rank:
            if index < len(bounds):
                upper = bounds[index]
                lower = bounds[index - 1] if index > 0 else 0.0
            else:  # overflow bucket: bounded by the observed maximum
                lower = bounds[-1]
                upper = high if high is not None else lower
            # Clamp to the observed extremes so tiny samples do not report
            # a bucket edge no observation ever reached.
            if low is not None:
                lower = max(lower, min(low, upper))
            if high is not None:
                upper = min(upper, high)
            if bucket_count == 1 or upper <= lower:
                return float(upper)
            fraction = (rank - previous) / bucket_count
            return float(lower + (upper - lower) * fraction)
    return float(high if high is not None else bounds[-1])


class MetricsRegistry:
    """A named collection of instruments with get-or-create semantics.

    ``enabled`` gates every instrument created by this registry: flipping
    it off turns each ``inc``/``observe``/``set`` into an early return (and
    call sites skip their clock reads via :func:`metrics_enabled`), which
    is the "compiled out to no-ops" mode the overhead tests measure.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._metrics: "Dict[str, object]" = {}

    def counter(self, name: str, help: str = "",
                label: Optional[str] = None) -> Counter:
        return self._get_or_create(
            name, Counter, lambda: Counter(name, help, label=label,
                                           registry=self))

    def gauge(self, name: str, help: str = "",
              fn: Optional[Callable[[], float]] = None) -> Gauge:
        gauge = self._get_or_create(
            name, Gauge, lambda: Gauge(name, help, fn=fn, registry=self))
        if fn is not None:
            gauge.fn = fn  # re-registration points the gauge at the newest source
        return gauge

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = LATENCY_BUCKETS) -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, help, buckets=buckets,
                                               registry=self))

    def _get_or_create(self, name, kind, factory):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = factory()
            elif not isinstance(metric, kind):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}"
                )
            return metric

    def names(self) -> List[str]:
        with self._lock:
            return list(self._metrics)

    def reset(self) -> None:
        """Drop every instrument (tests only — instruments hold no buffers)."""
        with self._lock:
            self._metrics.clear()

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A JSON/pickle-able dump of every instrument (shard merge unit)."""
        with self._lock:
            metrics = list(self._metrics.items())
        return {name: metric.snapshot() for name, metric in metrics}

    def render(self, extra: Sequence[Dict[str, Dict[str, object]]] = ()) -> str:
        """Prometheus text exposition of this registry + foreign snapshots."""
        merged = merge_snapshots(self.snapshot(), *extra)
        return render_snapshot(merged)


def merge_snapshots(*snapshots: Dict[str, Dict[str, object]]
                    ) -> Dict[str, Dict[str, object]]:
    """Fold registry snapshots together: counters/gauges/buckets sum.

    Histograms only merge when their bounds agree (same bucket scheme
    process-wide — which holds, the schemes are module constants); a
    foreign histogram with different bounds is kept under the first
    snapshot's entry untouched rather than corrupting bucket math.
    """
    merged: Dict[str, Dict[str, object]] = {}
    for snapshot in snapshots:
        for name, entry in (snapshot or {}).items():
            ours = merged.get(name)
            if ours is None:
                merged[name] = _copy_entry(entry)
                continue
            if ours["type"] != entry["type"]:
                continue
            if entry["type"] == "counter":
                ours["value"] = int(ours.get("value", 0)) + int(entry.get("value", 0))
                if entry.get("values"):
                    values = dict(ours.get("values") or {})
                    for key, value in entry["values"].items():
                        values[key] = values.get(key, 0) + int(value)
                    ours["values"] = values
                    ours.setdefault("label", entry.get("label"))
            elif entry["type"] == "gauge":
                ours["value"] = float(ours.get("value", 0.0)) + float(entry.get("value", 0.0))
            else:  # histogram
                if list(ours["bounds"]) != list(entry["bounds"]):
                    continue
                ours["counts"] = [
                    a + b for a, b in zip(ours["counts"], entry["counts"])
                ]
                ours["count"] = int(ours["count"]) + int(entry["count"])
                ours["sum"] = float(ours["sum"]) + float(entry["sum"])
                for key, pick in (("min", min), ("max", max)):
                    values = [v for v in (ours.get(key), entry.get(key))
                              if v is not None]
                    ours[key] = pick(values) if values else None
    return merged


def _copy_entry(entry: Dict[str, object]) -> Dict[str, object]:
    copied = dict(entry)
    for key in ("values", "bounds", "counts"):
        if key in copied and copied[key] is not None:
            container = copied[key]
            copied[key] = dict(container) if isinstance(container, dict) \
                else list(container)
    return copied


def snapshot_quantile(entry: Dict[str, object], q: float) -> float:
    """Quantile estimate straight from a histogram snapshot entry."""
    return _bucket_quantile(
        tuple(entry["bounds"]), entry["counts"], int(entry["count"]), q,
        entry.get("min"), entry.get("max"),
    )


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_snapshot(snapshot: Dict[str, Dict[str, object]]) -> str:
    """Render a (possibly merged) snapshot as Prometheus text format."""
    lines: List[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry["type"]
        if entry.get("help"):
            lines.append(f"# HELP {name} {entry['help']}")
        lines.append(f"# TYPE {name} {kind}")
        if kind == "counter":
            if entry.get("label") is not None:
                label = entry["label"]
                for key in sorted(entry.get("values") or {}):
                    lines.append(
                        f'{name}{{{label}="{key}"}} '
                        f"{_format_value(entry['values'][key])}"
                    )
                if entry.get("value"):
                    lines.append(f"{name} {_format_value(entry['value'])}")
            else:
                lines.append(f"{name} {_format_value(entry['value'])}")
        elif kind == "gauge":
            lines.append(f"{name} {_format_value(entry['value'])}")
        else:  # histogram: cumulative le buckets + sum + count
            cumulative = 0
            for bound, count in zip(entry["bounds"], entry["counts"]):
                cumulative += count
                lines.append(
                    f'{name}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
                )
            cumulative += entry["counts"][len(entry["bounds"])]
            lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{name}_sum {_format_value(entry['sum'])}")
            lines.append(f"{name}_count {entry['count']}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# The process-wide default registry (what instrumented modules bind to)
# ---------------------------------------------------------------------------

_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every built-in instrument registers in."""
    return _DEFAULT


def metrics_enabled() -> bool:
    """Hot-path guard: skip clock reads entirely when telemetry is off."""
    return _DEFAULT.enabled


def set_metrics_enabled(enabled: bool) -> bool:
    """Toggle process-wide telemetry; returns the previous setting."""
    previous = _DEFAULT.enabled
    _DEFAULT.enabled = bool(enabled)
    return previous


def counter(name: str, help: str = "", label: Optional[str] = None) -> Counter:
    return _DEFAULT.counter(name, help, label=label)


def gauge(name: str, help: str = "",
          fn: Optional[Callable[[], float]] = None) -> Gauge:
    return _DEFAULT.gauge(name, help, fn=fn)


def histogram(name: str, help: str = "",
              buckets: Sequence[float] = LATENCY_BUCKETS) -> Histogram:
    return _DEFAULT.histogram(name, help, buckets=buckets)


__all__ = [
    "BATCH_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "RATIO_BUCKETS",
    "counter",
    "gauge",
    "get_registry",
    "histogram",
    "log_buckets",
    "merge_snapshots",
    "metrics_enabled",
    "render_snapshot",
    "set_metrics_enabled",
    "snapshot_quantile",
]
