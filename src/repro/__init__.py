"""Reproduction of "High Performance Stencil Code Generation with Lift" (CGO 2018).

Subpackages:

* :mod:`repro.core` — the Lift IR with the stencil extensions (``pad``, ``slide``).
* :mod:`repro.rewriting` — rewrite rules (incl. overlapped tiling) and exploration.
* :mod:`repro.views` / :mod:`repro.codegen` — view system and OpenCL-C generation.
* :mod:`repro.runtime` — reference interpreter and GPU performance-model simulator.
* :mod:`repro.backend` — execution backends: the compiled vectorized NumPy
  kernel compiler (with compilation cache) and the interpreter cross-check.
* :mod:`repro.tuning` — ATF/OpenTuner-style constrained auto-tuning.
* :mod:`repro.baselines` — hand-written kernel models and a PPCG-like compiler.
* :mod:`repro.apps` — the Table-1 stencil benchmarks.
"""

__version__ = "1.0.0"
