#!/usr/bin/env python3
"""Building a new stencil application on top of the Lift primitives.

The paper's pitch is that DSL authors can target Lift instead of writing their
own GPU backend.  This example plays the role of such a DSL author: it defines
a small "image-processing DSL" (blur, sharpen, edge detection) whose operators
are all compiled through the same ``pad``/``slide``/``map`` composition, then
checks the results against NumPy and emits OpenCL kernels.

Run with::

    python examples/custom_stencil_dsl.py
"""

from __future__ import annotations

import numpy as np

from repro.core import builders as L
from repro.core.arithmetic import Var
from repro.core.ir import FunCall, Lambda
from repro.core.types import Float, array
from repro.core.userfuns import weighted_sum
from repro.codegen import generate_kernel
from repro.rewriting.strategies import NAIVE, lower_program
from repro.runtime.interpreter import evaluate_program


def convolution_3x3(weights: np.ndarray, boundary: str = "mirror") -> Lambda:
    """A 3×3 convolution as a Lift program — the DSL's single building block."""
    fn = weighted_sum(weights.ravel().tolist(), name="conv3x3")
    return L.fun(
        [array(Float, Var("N"), Var("M"))],
        lambda image: L.map_nd(
            lambda nbh: FunCall(fn, L.join(nbh)),
            L.slide_nd(3, 1, L.pad_nd(1, 1, boundary, image, 2), 2),
            2,
        ),
        names=["image"],
    )


#: The DSL's operator table: name -> 3x3 kernel weights.
OPERATORS = {
    "box_blur": np.full((3, 3), 1.0 / 9.0),
    "sharpen": np.array([[0.0, -1.0, 0.0], [-1.0, 5.0, -1.0], [0.0, -1.0, 0.0]]),
    "edge_detect": np.array([[-1.0, -1.0, -1.0], [-1.0, 8.0, -1.0], [-1.0, -1.0, -1.0]]),
}


def numpy_convolution(image: np.ndarray, weights: np.ndarray) -> np.ndarray:
    # Lift's "mirror" boundary repeats the edge element (NumPy's "symmetric" mode).
    padded = np.pad(image, 1, mode="symmetric")
    n, m = image.shape
    out = np.zeros_like(image)
    for di in range(3):
        for dj in range(3):
            out += weights[di, dj] * padded[di:di + n, dj:dj + m]
    return out


def main() -> None:
    rng = np.random.default_rng(7)
    image = rng.random((24, 32))

    print("A small image-processing DSL compiled through Lift:\n")
    for name, weights in OPERATORS.items():
        program = convolution_3x3(weights)
        raw = np.array(evaluate_program(program, [image]), dtype=float)
        lift_out = raw[..., 0] if raw.ndim == 3 else raw
        golden = numpy_convolution(image, weights)
        matches = np.allclose(lift_out, golden)
        print(f"  {name:<12} output {lift_out.shape}, matches NumPy: {matches}")
        assert matches

        kernel = generate_kernel(
            lower_program(program, NAIVE), [array(Float, 24, 32)], f"{name}_kernel"
        )
        lines = len(kernel.source.splitlines())
        print(f"               generated OpenCL kernel '{name}_kernel' ({lines} lines)")

    print("\nEvery operator reuses the same three primitives (pad, slide, map) —")
    print("no operator-specific GPU code was written.")


if __name__ == "__main__":
    main()
