#!/usr/bin/env python3
"""Room-acoustics simulation (paper §3.5, Listing 3) over multiple time steps.

The paper's most complex stencil: a 3D wave-propagation update that reads the
previous and current pressure grids plus a per-cell neighbour-count mask that
encodes the room's walls.  This example

1. builds the Lift expression of Listing 3,
2. runs a multi-step simulation with the reference interpreter by feeding each
   step's output back as the next step's input (what the ``iterate`` primitive
   expresses for a single grid),
3. cross-checks every step against an independent NumPy implementation,
4. generates the OpenCL kernel that Lift would launch per time step.

Run with::

    python examples/acoustic_room_simulation.py
"""

from __future__ import annotations

import numpy as np

from repro.apps.acoustic import (
    build_acoustic,
    compute_num_neighbours,
    reference_acoustic,
)
from repro.apps.base import squeeze_result
from repro.codegen import generate_kernel
from repro.core.types import Float, array
from repro.rewriting.strategies import NAIVE, lower_program
from repro.runtime.interpreter import evaluate_program

ROOM_SHAPE = (6, 10, 10)
TIME_STEPS = 4


def main() -> None:
    rng = np.random.default_rng(42)

    # Initial conditions: silence, plus a pressure impulse in the room centre.
    grid_prev = np.zeros(ROOM_SHAPE)
    grid_curr = np.zeros(ROOM_SHAPE)
    centre = tuple(extent // 2 for extent in ROOM_SHAPE)
    grid_curr[centre] = 1.0
    mask = compute_num_neighbours(ROOM_SHAPE)

    program = build_acoustic()
    print(f"Simulating a {ROOM_SHAPE} room for {TIME_STEPS} time steps...")

    for step in range(TIME_STEPS):
        lift_next = squeeze_result(
            np.array(evaluate_program(program, [grid_prev, grid_curr, mask]))
        )
        golden_next = reference_acoustic(grid_prev, grid_curr, mask)
        assert np.allclose(lift_next, golden_next), "Lift diverged from the golden model"

        energy = float(np.sum(lift_next ** 2))
        peak = float(np.max(np.abs(lift_next)))
        print(f"  step {step + 1}: energy={energy:.6f}  peak={peak:.4f}  ✓ matches NumPy")

        grid_prev, grid_curr = grid_curr, lift_next

    # The wave must have propagated away from the source cell.
    assert np.count_nonzero(np.abs(grid_curr) > 1e-9) > 1
    print("Wavefront propagated from the impulse as expected.")

    # One OpenCL kernel performs one time step; the host swaps the buffers.
    lowered = lower_program(program, NAIVE)
    kernel = generate_kernel(
        lowered,
        [array(Float, *ROOM_SHAPE)] * 3,
        "acoustic_step",
    )
    print("\nGenerated per-time-step OpenCL kernel (first lines):")
    print("\n".join(kernel.source.splitlines()[:26]))
    print("  ...")
    print(kernel.describe())


if __name__ == "__main__":
    main()
