#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

This script reproduces the paper's Listings 1, 2 and 4:

1. express the 3-point Jacobi stencil with ``pad``, ``slide`` and ``map``
   (Listing 2),
2. type-check it and run it with the reference interpreter against the plain C
   semantics of Listing 1,
3. apply the overlapped-tiling rewrite rule (Listing 4) and show that the
   rewritten expression computes the same result,
4. lower both variants and generate OpenCL kernels from them.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations


from repro.core import builders as L
from repro.core import pretty
from repro.core.arithmetic import Var
from repro.core.ir import Lambda
from repro.core.typecheck import check_program
from repro.core.types import Float, array
from repro.core.userfuns import add
from repro.codegen import generate_kernel
from repro.rewriting.algorithmic_rules import TileStencil1DRule
from repro.rewriting.rules import apply_at, find_applications
from repro.rewriting.strategies import NAIVE, lower_program, tiled_strategy
from repro.runtime.interpreter import evaluate_program


def listing1_reference(a: list[float]) -> list[float]:
    """The plain C loop nest of Listing 1, transcribed to Python."""
    n = len(a)
    out = []
    for i in range(n):
        total = 0.0
        for j in (-1, 0, 1):
            pos = min(max(i + j, 0), n - 1)
            total += a[pos]
        out.append(total)
    return out


def main() -> None:
    n = Var("N")

    # --- Listing 2: the stencil in Lift -----------------------------------
    sum_nbh = L.fun_n(1, lambda nbh: L.reduce(add, 0.0, nbh))
    stencil = L.fun(
        [array(Float, n)],
        lambda a: L.map(sum_nbh, L.slide(3, 1, L.pad(1, 1, L.CLAMP, a))),
        names=["A"],
    )
    print("Listing 2 (3-point Jacobi in Lift):")
    print(" ", pretty(stencil))

    result_type = check_program(stencil, [array(Float, 16)])
    print("  inferred type for N=16:", result_type)

    data = [float((i * 7) % 5) for i in range(16)]
    lift_out = [v[0] for v in evaluate_program(stencil, [data])]
    assert lift_out == listing1_reference(data)
    print("  interpreter output matches the C semantics of Listing 1 ✓")

    # --- Listing 4: overlapped tiling as a rewrite rule ---------------------
    rule = TileStencil1DRule(tile_size=6)
    position = find_applications(stencil.body, rule)[0]
    tiled = Lambda(stencil.params, apply_at(stencil.body, rule, position))
    print("\nListing 4 (after the overlapped-tiling rewrite, tile size 6):")
    print(" ", pretty(tiled))

    tiled_out = [v[0] for v in evaluate_program(tiled, [data])]
    assert tiled_out == lift_out
    print("  the rewrite is semantics-preserving ✓")

    # --- Code generation ------------------------------------------------------
    jacobi2d = L.fun(
        [array(Float, Var("N"), Var("M"))],
        lambda a: L.map_nd(
            lambda nbh: L.reduce(add, 0.0, L.join(nbh)),
            L.slide_nd(3, 1, L.pad_nd(1, 1, L.CLAMP, a, 2), 2),
            2,
        ),
        names=["grid"],
    )
    naive_kernel = generate_kernel(
        lower_program(jacobi2d, NAIVE), [array(Float, 64, 64)], "jacobi2d_naive"
    )
    tiled_kernel = generate_kernel(
        lower_program(jacobi2d, tiled_strategy(18)), [array(Float, 64, 64)],
        "jacobi2d_tiled",
    )
    print("\nGenerated OpenCL (naive, one work-item per element):")
    print(naive_kernel.source)
    print("Generated OpenCL (overlapped tiling + local memory), first lines:")
    print("\n".join(tiled_kernel.source.splitlines()[:24]))
    print("  ...")
    print("\nKernel launch metadata:")
    print(" ", naive_kernel.describe())
    print(" ", tiled_kernel.describe())


if __name__ == "__main__":
    main()
