#!/usr/bin/env python3
"""Optimisation-space exploration and auto-tuning across the three GPUs.

This example mirrors the paper's evaluation methodology on one benchmark
(the 9-point Stencil2D from SHOC): the macro rewrites enumerate untiled and
overlapped-tiling variants, the ATF-style tuner picks thread counts and
per-thread work for each variant on each virtual device, and the results show
how the best optimisation choice differs per platform — the essence of the
paper's performance-portability claim.

Run with::

    python examples/tiling_exploration.py
"""

from __future__ import annotations

from repro.apps import get_benchmark
from repro.experiments.pipeline import lift_best_result, ppcg_best_result
from repro.rewriting.exploration import explore
from repro.runtime.simulator.device import DEVICES

BENCHMARK = "stencil2d"
SHAPE = (2048, 2048)
BUDGET = 2000


def main() -> None:
    benchmark = get_benchmark(BENCHMARK)
    program = benchmark.build_program()

    print(f"Benchmark: {benchmark.name} ({benchmark.points}-point, "
          f"{benchmark.ndims}D, input {SHAPE[0]}x{SHAPE[1]})\n")

    # 1. Macro exploration: which structurally different kernels exist?
    variants = explore(program, stencil_size=3, stencil_step=1,
                       padded_length=SHAPE[-1] + 2, tile_sizes=(6, 10, 18, 34),
                       validate_tiles=False)
    print(f"Macro exploration produced {len(variants)} kernel variants:")
    for variant in variants:
        print(f"  - {variant.describe()}")

    # 2. Per-device tuning: the best variant differs per platform.
    print("\nBest kernel per device (explore + tune + simulate):")
    header = f"{'Device':<16} {'GElem/s':>9} {'best variant':<32} {'configuration'}"
    print(header)
    print("-" * len(header))
    for device in DEVICES.values():
        outcome = lift_best_result(benchmark, shape=SHAPE, device=device,
                                   tuner_budget=BUDGET)
        print(f"{device.name:<16} {outcome.gelements_per_second:>9.3f} "
              f"{outcome.strategy:<32} {outcome.configuration}")

    # 3. The same tuner applied to the PPCG baseline, for comparison.
    print("\nPPCG baseline (same tuning budget):")
    for device in DEVICES.values():
        result, config, _ = ppcg_best_result(benchmark, device, shape=SHAPE,
                                             tuner_budget=BUDGET)
        print(f"{device.name:<16} {result.gelements_per_second:>9.3f} "
              f"tile/block = {config}")

    print("\nObservation: the overlapped-tiling rewrite only pays off on some "
          "devices — the rewrite-based exploration picks it exactly there.")


if __name__ == "__main__":
    main()
