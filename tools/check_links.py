"""Docs health check: relative links resolve, documented CLI verbs exist.

Two passes, run by the CI ``docs`` job (and locally via
``python tools/check_links.py``):

1. **Link check.** Every relative markdown link in ``README.md``,
   ``ROADMAP.md`` and ``docs/*.md`` must point at a file that exists in
   the repository (anchors are stripped; ``http(s)``/``mailto`` links are
   out of scope — CI must not depend on external availability).
2. **Verb smoke.** Every ``repro <verb>`` mentioned in
   ``docs/OPERATIONS.md`` must answer ``python -m repro <verb> --help``
   with exit status 0 — so the operations document cannot drift from the
   actual CLI surface without failing CI.
3. **Coverage.** The reverse direction: every subcommand the CLI parser
   actually registers must appear in ``docs/OPERATIONS.md`` — adding a
   verb without documenting it fails CI too.

Exits non-zero with one line per problem.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

DOC_FILES = [
    REPO / "README.md",
    REPO / "ROADMAP.md",
    *sorted((REPO / "docs").glob("*.md")),
]

# [text](target) — excluding images; inline code spans are stripped first.
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_CODE_SPAN = re.compile(r"`[^`]*`")
# ``repro <verb>`` or ``python -m repro <verb>`` with a verb-shaped token.
_VERB = re.compile(r"\brepro\s+([a-z][a-z0-9-]+)\b")
_NOT_VERBS = {"bench", "cli", "core", "backend", "service", "tuning"}


def check_links() -> list[str]:
    problems = []
    for doc in DOC_FILES:
        if not doc.exists():
            problems.append(f"{doc.relative_to(REPO)}: file missing")
            continue
        text = _CODE_SPAN.sub("", doc.read_text(encoding="utf-8"))
        for match in _LINK.finditer(text):
            target = match.group(1).split("#", 1)[0]
            if not target or "://" in target or target.startswith("mailto:"):
                continue
            resolved = (doc.parent / target).resolve()
            if not resolved.exists():
                problems.append(
                    f"{doc.relative_to(REPO)}: broken link -> {match.group(1)}"
                )
    return problems


def documented_verbs() -> set[str]:
    operations = REPO / "docs" / "OPERATIONS.md"
    verbs = set(_VERB.findall(operations.read_text(encoding="utf-8")))
    return verbs - _NOT_VERBS


def check_verbs() -> list[str]:
    problems = []
    for verb in sorted(documented_verbs()):
        result = subprocess.run(
            [sys.executable, "-m", "repro", verb, "--help"],
            cwd=REPO,
            capture_output=True,
            text=True,
        )
        if result.returncode != 0:
            detail = (result.stderr or result.stdout).strip().splitlines()
            problems.append(
                f"docs/OPERATIONS.md documents `repro {verb}` but "
                f"`--help` failed: {detail[-1] if detail else 'no output'}"
            )
    return problems


def registered_verbs() -> set[str]:
    """The subcommands the argparse parser actually registers."""
    import argparse

    sys.path.insert(0, str(REPO / "src"))
    try:
        from repro.cli import build_parser
    finally:
        sys.path.pop(0)
    parser = build_parser()
    for action in parser._subparsers._group_actions:
        if isinstance(action, argparse._SubParsersAction):
            return set(action.choices)
    return set()


def check_verb_coverage() -> list[str]:
    documented = documented_verbs()
    return [
        f"CLI registers `repro {verb}` but docs/OPERATIONS.md "
        f"never mentions it"
        for verb in sorted(registered_verbs() - documented)
    ]


def main() -> int:
    problems = check_links() + check_verbs() + check_verb_coverage()
    for problem in problems:
        print(f"FAIL: {problem}")
    if not problems:
        print(
            f"OK: {len(DOC_FILES)} docs link-checked, "
            f"{len(documented_verbs())} CLI verbs answered --help, "
            f"{len(registered_verbs())} registered subcommands documented"
        )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
